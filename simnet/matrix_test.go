package simnet

import (
	"context"
	"os"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/control"
	"repro/heartbeat"
	"repro/observer"
	"repro/scheduler"
	"repro/sim"
)

// matrixBaseSeed is the fixed seed `make ci` replays on every run; the
// matrix additionally runs one rotating seed (logged, for reproduction) so
// coverage widens over time without giving up reproducibility.
const matrixBaseSeed = 1

// matrixSize is how many fixed-seed scenarios one matrix run executes.
// Overridable via SIMNET_MATRIX for local sweeps (e.g. SIMNET_MATRIX=1000
// go test -run ScenarioMatrix ./simnet).
func matrixSize() int {
	if s := os.Getenv("SIMNET_MATRIX"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 110
}

// TestGenerateIsDeterministic pins the reproducibility contract: the seed
// alone determines the scenario.
func TestGenerateIsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a, b := Generate(seed), Generate(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d generated two different scenarios:\n%+v\n%+v", seed, a, b)
		}
	}
}

// TestGenerateWithPinsScale pins the GenConfig contract: a requested
// producer count is honored exactly (the bare generator caps producers at
// 3 and used to silently inflate a small count up to the leaf count), the
// zero config reproduces Generate byte for byte, and every fault in the
// schedule still targets a producer that exists.
func TestGenerateWithPinsScale(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		if a, b := Generate(seed), GenerateWith(seed, GenConfig{}); !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: GenerateWith zero config diverges from Generate:\n%+v\n%+v", seed, a, b)
		}
		for _, producers := range []int{1, 2, 4, 9, 33} {
			sc := GenerateWith(seed, GenConfig{Producers: producers})
			if sc.Producers != producers {
				t.Fatalf("seed %d: pinned %d producers, got %d", seed, producers, sc.Producers)
			}
			if sc.Topology == TopoRelayTree && (sc.Leaves < 1 || sc.Leaves > sc.Producers) {
				t.Fatalf("seed %d: %d leaves for %d pinned producers", seed, sc.Leaves, producers)
			}
			for _, ev := range sc.Events {
				if ev.Producer < 0 || ev.Producer >= sc.Producers {
					t.Fatalf("seed %d: event %v targets producer %d of %d", seed, ev.Kind, ev.Producer, sc.Producers)
				}
			}
			if again := GenerateWith(seed, GenConfig{Producers: producers}); !reflect.DeepEqual(sc, again) {
				t.Fatalf("seed %d producers %d: GenerateWith is not deterministic", seed, producers)
			}
		}
		sc := GenerateWith(seed, GenConfig{Producers: 6, Leaves: 2})
		if sc.Producers != 6 {
			t.Fatalf("seed %d: pinned 6 producers with 2 leaves, got %d", seed, sc.Producers)
		}
		if sc.Topology == TopoRelayTree && sc.Leaves != 2 {
			t.Fatalf("seed %d: pinned 2 leaves, got %d", seed, sc.Leaves)
		}
	}
}

// TestScenarioMatrix is the tentpole suite: hundreds of simulated seconds
// of lapped rings, producer restarts, file recreations, link blips,
// partitions, and relay outages, across every topology, in a few real
// seconds — every scenario checked against the simcheck delivery
// contract, every failure reporting the seed that replays it exactly.
func TestScenarioMatrix(t *testing.T) {
	n := matrixSize()
	seeds := make([]int64, 0, n+1)
	for i := 0; i < n; i++ {
		seeds = append(seeds, matrixBaseSeed+int64(i))
	}
	// The rotating seed: changes daily, logged so a failure is replayable
	// with SIMNET_SEED even after the day rolls over.
	rotating := time.Now().Unix() / 86400
	seeds = append(seeds, rotating)
	if s := os.Getenv("SIMNET_SEED"); s != "" {
		// Replay mode: exactly the named seed.
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("SIMNET_SEED: %v", err)
		}
		seeds = []int64{v}
	}
	t.Logf("matrix: %d fixed seeds from %d, rotating seed %d", n, matrixBaseSeed, rotating)

	var (
		mu       sync.Mutex
		total    Stats
		count    int
		topo     [3]int
		started  = time.Now()
		failures int32
	)
	// Scenarios are fully isolated (own clock, own network, own tempdir):
	// run a few at a time so the matrix overlaps file I/O and settling.
	sem := make(chan struct{}, 4)
	var wg sync.WaitGroup
	for _, seed := range seeds {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sc := Generate(seed)
			stats, err := sc.Run(t.TempDir())
			if err != nil {
				atomic.AddInt32(&failures, 1)
				t.Errorf("scenario FAILED — replay with SIMNET_SEED=%d go test -run TestScenarioMatrix ./simnet\n  %s\n  %v", seed, sc, err)
				return
			}
			mu.Lock()
			count++
			topo[sc.Topology]++
			total.SimSeconds += stats.SimSeconds
			total.Delivered += stats.Delivered
			total.Missed += stats.Missed
			total.Restarts += stats.Restarts
			total.Reconnects += stats.Reconnects
			total.Lives += stats.Lives
			if stats.Resumed {
				total.Resumed = true
			}
			total.Drains += stats.Drains
			total.Reclaims += stats.Reclaims
			if stats.MaxRemap > total.MaxRemap {
				total.MaxRemap = stats.MaxRemap
			}
			total.Handoffs += stats.Handoffs
			total.Shed += stats.Shed
			mu.Unlock()
		}(seed)
	}
	wg.Wait()
	elapsed := time.Since(started)
	t.Logf("matrix: %d scenarios (direct=%d file=%d relay-tree=%d), %.0f simulated seconds in %v: delivered=%d missed=%d restarts=%d reconnects=%d lives=%d resumed=%v drains=%d reclaims=%d maxremap=%.2f handoffs=%d shed=%d",
		count, topo[0], topo[1], topo[2], total.SimSeconds, elapsed.Round(time.Millisecond),
		total.Delivered, total.Missed, total.Restarts, total.Reconnects, total.Lives, total.Resumed,
		total.Drains, total.Reclaims, total.MaxRemap, total.Handoffs, total.Shed)
	if failures > 0 {
		return // per-scenario errors already reported with their seeds
	}
	if os.Getenv("SIMNET_SEED") != "" {
		return // replay mode: coverage gates don't apply to one scenario
	}
	if os.Getenv("SIMNET_MATRIX") != "" {
		// Local sweep mode: any size is legal (including tiny smoke runs);
		// the absolute gates below are calibrated for the CI default.
		return
	}

	// Coverage gates: the matrix must actually exercise the ugly cases it
	// exists for, and must do so at simulation speed.
	if count < 100 {
		t.Errorf("matrix ran %d scenarios, want >= 100", count)
	}
	if total.SimSeconds < 500 {
		t.Errorf("matrix covered %.0f simulated seconds, want >= 500", total.SimSeconds)
	}
	if total.Delivered == 0 || total.Missed == 0 {
		t.Errorf("matrix never exercised loss accounting: delivered=%d missed=%d", total.Delivered, total.Missed)
	}
	if total.Restarts == 0 || total.Lives <= count {
		t.Errorf("matrix never exercised producer restarts: restarts=%d lives=%d", total.Restarts, total.Lives)
	}
	if total.Reconnects == 0 {
		t.Errorf("matrix never exercised reconnects")
	}
	if !total.Resumed {
		t.Errorf("matrix never exercised consumer cursor-resume")
	}
	if total.Drains == 0 || total.Reclaims == 0 {
		t.Errorf("matrix never exercised the balancer drain/reclaim arc: drains=%d reclaims=%d", total.Drains, total.Reclaims)
	}
	if total.Handoffs == 0 {
		t.Errorf("matrix never exercised the leaf-die handoff arc")
	}
	for i, n := range topo {
		if n == 0 {
			t.Errorf("matrix never ran topology %v", Topology(i))
		}
	}
}

// TestVirtualTimeControlLoop drives the wall-clock control loops — an
// observer.Hub and a scheduler.CoreScheduler.Run — entirely under virtual
// time: ~2 virtual minutes of judgments and decisions in well under a
// real second, including a flatline detection, with not one real sleep.
func TestVirtualTimeControlLoop(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	start := clk.Now()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go clk.AutoAdvance(ctx, 0)

	hb, err := heartbeat.New(20, heartbeat.WithClock(clk), heartbeat.WithCapacity(1<<12))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	if err := hb.SetTarget(5, 1e6); err != nil {
		t.Fatal(err)
	}

	// The application: beats every 100ms virtual, then goes silent.
	silentAfter := clk.Now().Add(time.Minute)
	go func() {
		for ctx.Err() == nil {
			select {
			case <-ctx.Done():
				return
			case <-clk.After(100 * time.Millisecond):
			}
			if clk.Now().Before(silentAfter) {
				hb.Beat()
			}
		}
	}()

	var mu sync.Mutex
	healths := map[observer.Health]int{}
	hub := observer.NewHub(500*time.Millisecond, func(name string, st observer.Status) {
		mu.Lock()
		healths[st.Health]++
		mu.Unlock()
	}, observer.WithHubClock(clk))
	if err := hub.Add("app", observer.HeartbeatStream(hb)); err != nil {
		t.Fatal(err)
	}
	hubDone := make(chan struct{})
	hctx, hcancel := context.WithCancel(ctx)
	go func() { defer close(hubDone); hub.Run(hctx) }()

	var samples atomic.Int64
	sched, err := scheduler.New(observer.HeartbeatSource(hb), &fakeMachine{},
		scheduler.StepperPolicy{Stepper: &control.Stepper{TargetMin: 5, TargetMax: 1e6}},
		scheduler.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	defer sched.Close()
	sctx, scancel := context.WithCancel(ctx)
	schedDone := make(chan struct{})
	go func() {
		defer close(schedDone)
		sched.Run(sctx, 500*time.Millisecond, func(scheduler.Sample) { samples.Add(1) }, nil)
	}()

	// Wait (real time) until two virtual minutes have elapsed.
	deadline := time.Now().Add(30 * time.Second)
	for clk.Now().Sub(start) < 2*time.Minute {
		if time.Now().After(deadline) {
			t.Fatalf("virtual time stalled at %v", clk.Now().Sub(start))
		}
		time.Sleep(time.Millisecond)
	}
	hcancel()
	scancel()
	<-hubDone
	<-schedDone

	mu.Lock()
	defer mu.Unlock()
	if healths[observer.Healthy] == 0 {
		t.Fatalf("hub never judged the app healthy: %v", healths)
	}
	if healths[observer.Flatlined]+healths[observer.Dead] == 0 {
		t.Fatalf("hub never noticed the virtual silence: %v", healths)
	}
	if samples.Load() < 100 {
		t.Fatalf("scheduler made %d decisions across 2 virtual minutes, want >= 100", samples.Load())
	}
}

type fakeMachine struct{ cores atomic.Int32 }

func (m *fakeMachine) SetCores(n int) int {
	if n < 1 {
		n = 1
	}
	if n > 8 {
		n = 8
	}
	m.cores.Store(int32(n))
	return n
}
func (m *fakeMachine) Cores() int {
	if c := m.cores.Load(); c >= 1 {
		return int(c)
	}
	return 1
}
func (m *fakeMachine) MaxCores() int { return 8 }
