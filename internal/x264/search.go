package x264

import "repro/internal/video"

// BlockSize is the macroblock edge in pixels.
const BlockSize = 16

// sadCounter tallies how many block-SAD evaluations a search performed, by
// block area, so the encoder can report the real operation count.
type sadCounter struct {
	evals16 int // 16x16 evaluations (256 pixel ops each)
	evals8  int // 8x8 evaluations (64 pixel ops each)
}

// sad16 computes the sum of absolute differences between the 16x16 block of
// cur at (bx, by) and the block of ref displaced by (mvx, mvy). Reference
// pixels outside the frame clamp to the edge.
func sad16(cur, ref *video.Frame, bx, by, mvx, mvy int, n *sadCounter) uint32 {
	n.evals16++
	rx, ry := bx+mvx, by+mvy
	// Fast path: reference block fully inside the frame.
	if rx >= 0 && ry >= 0 && rx+BlockSize <= ref.W && ry+BlockSize <= ref.H {
		var sum uint32
		for y := 0; y < BlockSize; y++ {
			c := cur.Pix[(by+y)*cur.W+bx:]
			r := ref.Pix[(ry+y)*ref.W+rx:]
			for x := 0; x < BlockSize; x++ {
				d := int32(c[x]) - int32(r[x])
				if d < 0 {
					d = -d
				}
				sum += uint32(d)
			}
		}
		return sum
	}
	var sum uint32
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			d := int32(cur.Pix[(by+y)*cur.W+bx+x]) - int32(ref.At(rx+x, ry+y))
			if d < 0 {
				d = -d
			}
			sum += uint32(d)
		}
	}
	return sum
}

// sad8 is sad16 for an 8x8 sub-block at absolute position (bx, by).
func sad8(cur, ref *video.Frame, bx, by, mvx, mvy int, n *sadCounter) uint32 {
	n.evals8++
	var sum uint32
	rx, ry := bx+mvx, by+mvy
	if rx >= 0 && ry >= 0 && rx+8 <= ref.W && ry+8 <= ref.H {
		for y := 0; y < 8; y++ {
			c := cur.Pix[(by+y)*cur.W+bx:]
			r := ref.Pix[(ry+y)*ref.W+rx:]
			for x := 0; x < 8; x++ {
				d := int32(c[x]) - int32(r[x])
				if d < 0 {
					d = -d
				}
				sum += uint32(d)
			}
		}
		return sum
	}
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			d := int32(cur.Pix[(by+y)*cur.W+bx+x]) - int32(ref.At(rx+x, ry+y))
			if d < 0 {
				d = -d
			}
			sum += uint32(d)
		}
	}
	return sum
}

// sadSubpel evaluates a 16x16 SAD against the reference sampled at a
// fractional displacement (fx, fy pixels, e.g. mv + 0.5): real bilinear
// interpolation, the work sub-pixel refinement actually performs.
func sadSubpel(cur, ref *video.Frame, bx, by int, fx, fy float64, n *sadCounter) uint32 {
	n.evals16++
	ix, iy := int(fx), int(fy)
	if fx < 0 && fx != float64(ix) {
		ix--
	}
	if fy < 0 && fy != float64(iy) {
		iy--
	}
	wx := fx - float64(ix)
	wy := fy - float64(iy)
	var sum uint32
	for y := 0; y < BlockSize; y++ {
		for x := 0; x < BlockSize; x++ {
			rx, ry := bx+x+ix, by+y+iy
			p00 := float64(ref.At(rx, ry))
			p10 := float64(ref.At(rx+1, ry))
			p01 := float64(ref.At(rx, ry+1))
			p11 := float64(ref.At(rx+1, ry+1))
			v := p00*(1-wx)*(1-wy) + p10*wx*(1-wy) + p01*(1-wx)*wy + p11*wx*wy
			d := float64(cur.Pix[(by+y)*cur.W+bx+x]) - v
			if d < 0 {
				d = -d
			}
			sum += uint32(d)
		}
	}
	return sum
}

// motionVector is an integer or fractional displacement with its SAD.
type motionVector struct {
	fx, fy float64
	sad    uint32
}

// searchInteger finds the best integer motion vector for the block at
// (bx, by) against ref using the configured algorithm.
func searchInteger(cfg Config, cur, ref *video.Frame, bx, by int, n *sadCounter) motionVector {
	best := motionVector{fx: 0, fy: 0, sad: sad16(cur, ref, bx, by, 0, 0, n)}
	switch cfg.Search {
	case Exhaustive:
		r := cfg.SearchRange
		for dy := -r; dy <= r; dy++ {
			for dx := -r; dx <= r; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				if s := sad16(cur, ref, bx, by, dx, dy, n); s < best.sad {
					best = motionVector{fx: float64(dx), fy: float64(dy), sad: s}
				}
			}
		}
	case Hex:
		best = patternSearch(cur, ref, bx, by, best, hexPattern, 16, n)
		best = patternSearch(cur, ref, bx, by, best, diamondPattern, 2, n) // small refine
	case Diamond:
		best = patternSearch(cur, ref, bx, by, best, diamondPattern, 16, n)
	}
	return best
}

var (
	hexPattern     = [][2]int{{-2, 0}, {2, 0}, {-1, -2}, {1, -2}, {-1, 2}, {1, 2}}
	diamondPattern = [][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}}
)

// patternSearch iteratively re-centers a fixed offset pattern on the best
// candidate until no candidate improves or maxIter is reached. Its cost is
// content-dependent: high-motion scenes take more iterations, which is why
// hex/diamond encodes speed up on calm content (the phase behaviour of
// Fig 2).
func patternSearch(cur, ref *video.Frame, bx, by int, best motionVector, pattern [][2]int, maxIter int, n *sadCounter) motionVector {
	cx, cy := int(best.fx), int(best.fy)
	for iter := 0; iter < maxIter; iter++ {
		improved := false
		bestDx, bestDy := 0, 0
		for _, p := range pattern {
			dx, dy := cx+p[0], cy+p[1]
			if s := sad16(cur, ref, bx, by, dx, dy, n); s < best.sad {
				best = motionVector{fx: float64(dx), fy: float64(dy), sad: s}
				bestDx, bestDy = dx, dy
				improved = true
			}
		}
		if !improved {
			break
		}
		cx, cy = bestDx, bestDy
	}
	return best
}

// refineSubpel performs cfg.SubpelLevels passes of fractional refinement:
// each pass evaluates eight neighbours at half the previous step (1/2, 1/4,
// 1/8 pel) around the current best.
func refineSubpel(cfg Config, cur, ref *video.Frame, bx, by int, best motionVector, n *sadCounter) motionVector {
	step := 0.5
	for level := 0; level < cfg.SubpelLevels; level++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 {
					continue
				}
				fx := best.fx + float64(dx)*step
				fy := best.fy + float64(dy)*step
				if s := sadSubpel(cur, ref, bx, by, fx, fy, n); s < best.sad {
					best = motionVector{fx: fx, fy: fy, sad: s}
				}
			}
		}
		step /= 2
	}
	return best
}
