package hbfile_test

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"repro/hbfile"
	"repro/heartbeat"
)

// corruptHeader writes a ring-file header with one field patched.
func corruptHeader(t *testing.T, patch func(buf []byte)) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "bad.hb")
	w, err := hbfile.Create(p, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	buf, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	patch(buf)
	if err := os.WriteFile(p, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOpenRejectsBadVersion(t *testing.T) {
	p := corruptHeader(t, func(buf []byte) {
		binary.LittleEndian.PutUint32(buf[8:], 99)
	})
	if _, err := hbfile.Open(p); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestOpenRejectsBadRecordSize(t *testing.T) {
	p := corruptHeader(t, func(buf []byte) {
		binary.LittleEndian.PutUint32(buf[12:], 64)
	})
	if _, err := hbfile.Open(p); err == nil {
		t.Fatal("bad record size accepted")
	}
}

func TestOpenRejectsZeroCapacity(t *testing.T) {
	p := corruptHeader(t, func(buf []byte) {
		binary.LittleEndian.PutUint32(buf[16:], 0)
	})
	if _, err := hbfile.Open(p); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestOpenRejectsShortFile(t *testing.T) {
	p := filepath.Join(t.TempDir(), "short.hb")
	if err := os.WriteFile(p, []byte("APPHBv1\x00"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := hbfile.Open(p); err == nil {
		t.Fatal("short file accepted")
	}
}

func TestWriterOperationsAfterClose(t *testing.T) {
	p := filepath.Join(t.TempDir(), "c.hb")
	w, err := hbfile.Create(p, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(heartbeat.Record{Seq: 1}); err == nil {
		t.Fatal("write after close accepted")
	}
	if err := w.WriteTarget(1, 2); err == nil {
		t.Fatal("target after close accepted")
	}
	if err := w.Sync(); err == nil {
		t.Fatal("sync after close accepted")
	}
}

func TestLogWriterOperationsAfterClose(t *testing.T) {
	p := filepath.Join(t.TempDir(), "c.hblog")
	w, err := hbfile.CreateLog(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(heartbeat.Record{Seq: 1}); err == nil {
		t.Fatal("write after close accepted")
	}
	if err := w.WriteTarget(1, 2); err == nil {
		t.Fatal("target after close accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal("second close not idempotent")
	}
}

func TestWriterSyncAndCursor(t *testing.T) {
	p := filepath.Join(t.TempDir(), "s.hb")
	w, err := hbfile.Create(p, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if w.Cursor() != 0 {
		t.Fatal("fresh cursor nonzero")
	}
	if err := w.WriteRecord(heartbeat.Record{Seq: 3}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRecord(heartbeat.Record{Seq: 1}); err != nil {
		t.Fatal(err) // out-of-order arrival
	}
	if w.Cursor() != 3 {
		t.Fatalf("cursor = %d, want monotone max 3", w.Cursor())
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestReaderRateInsufficientRecords(t *testing.T) {
	p := filepath.Join(t.TempDir(), "r.hb")
	w, err := hbfile.Create(p, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r, err := hbfile.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok, err := r.Rate(0); err != nil || ok {
		t.Fatalf("Rate on empty file: ok=%v err=%v", ok, err)
	}
	if recs, err := r.Last(0); err != nil || recs != nil {
		t.Fatalf("Last(0) = %v, %v", recs, err)
	}
}

func TestLogReadEdges(t *testing.T) {
	p := filepath.Join(t.TempDir(), "e.hblog")
	w, err := hbfile.CreateLog(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	r, err := hbfile.OpenLog(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if recs, err := r.Read(0, 10); err != nil || recs != nil {
		t.Fatalf("Read on empty log = %v, %v", recs, err)
	}
	if recs, err := r.Last(5); err != nil || recs != nil {
		t.Fatalf("Last on empty log = %v, %v", recs, err)
	}
	if _, ok, err := r.Rate(0); err != nil || ok {
		t.Fatalf("Rate on empty log: ok=%v err=%v", ok, err)
	}
}
