package observer

import (
	"context"
	"errors"
	"io"
	"time"

	"repro/heartbeat"
)

// Monitor watches one application and delivers a Status judgment every
// interval. It is the long-running form of the observer role: the paper's
// external scheduler polls the application's heart rate between decisions,
// and its cloud manager watches for flatlined nodes.
//
// Run consumes the application incrementally through a Stream: between
// judgments it absorbs only the records published since the last batch,
// and an interval in which nothing was published re-reads nothing at all —
// the snapshot re-fetch of the pre-stream Monitor is gone. Judgments still
// fire every interval regardless, because silence is exactly what
// flatline/death detection must observe.
type Monitor struct {
	source     Source
	stream     Stream
	classifier *Classifier
	interval   time.Duration
	maxRecords int
	onStatus   func(Status)
	onError    func(error)
	clk        heartbeat.Clock // nil = wall clock; paces Run's intervals
}

// MonitorOption configures NewMonitor.
type MonitorOption func(*Monitor)

// WithClassifier sets the classifier (default: zero-value Classifier).
func WithClassifier(c *Classifier) MonitorOption {
	return func(m *Monitor) { m.classifier = c }
}

// WithMaxRecords sets how many records the judgment window retains
// (default: the classifier window, falling back to the application's
// default window).
func WithMaxRecords(n int) MonitorOption {
	return func(m *Monitor) { m.maxRecords = n }
}

// WithOnError installs a callback for observation errors (default:
// ignored; a source that keeps failing will surface as Dead via the
// classifier Epoch).
func WithOnError(f func(error)) MonitorOption {
	return func(m *Monitor) { m.onError = f }
}

// WithStream has Run consume the given stream instead of deriving one from
// the Source. Use it to monitor a Stream that has no Source form; the
// source argument of NewMonitor may then be nil (Poll, which is
// snapshot-based, returns an error in that case).
func WithStream(st Stream) MonitorOption {
	return func(m *Monitor) { m.stream = st }
}

// WithMonitorClock runs the monitor on an explicit clock: Run's judgment
// intervals — and the classifier's notion of "now", unless it carries its
// own Clock — follow clk, so a virtual clock drives the monitor as a
// simulation event loop. A nil clk is the wall clock.
func WithMonitorClock(clk heartbeat.Clock) MonitorOption {
	return func(m *Monitor) { m.clk = clk }
}

// NewMonitor creates a Monitor that judges source every interval and calls
// onStatus with each classification. A non-positive interval selects
// DefaultHubInterval (the snapshot-era Run panicked on one; the
// stream-era loop would busy-spin instead, which is worse).
func NewMonitor(source Source, interval time.Duration, onStatus func(Status), opts ...MonitorOption) *Monitor {
	if interval <= 0 {
		interval = DefaultHubInterval
	}
	m := &Monitor{
		source:   source,
		interval: interval,
		onStatus: onStatus,
	}
	for _, o := range opts {
		o(m)
	}
	if m.classifier == nil {
		m.classifier = &Classifier{}
	}
	return m
}

// Poll performs one snapshot-based observation immediately. It uses the
// Source directly (the compat path); Run is the incremental path.
func (m *Monitor) Poll() (Status, error) {
	if m.source == nil {
		return Status{}, errors.New("observer: monitor has no source (stream-only; use Run)")
	}
	snap, err := m.source.Snapshot(m.maxRecords)
	if err != nil {
		return Status{}, err
	}
	return m.classifier.Classify(snap), nil
}

// Run judges every interval until ctx is cancelled, absorbing stream
// batches as they land in between. The first judgment fires immediately
// from whatever is already published (parity with the snapshot-era Run,
// whose first poll preceded the first wait); subsequent ones follow the
// interval. The classifier's Epoch is set to the start time if unset,
// enabling Dead detection for sources that never beat. Run returns when
// ctx is cancelled or the stream ends (the observed Heartbeat was closed);
// a final status is delivered for the stream's tail. A stream Run derived
// itself (no WithStream) is released when Run returns.
func (m *Monitor) Run(ctx context.Context) {
	if m.classifier.Clock == nil {
		m.classifier.Clock = m.clk
	}
	if m.classifier.Epoch.IsZero() {
		m.classifier.Epoch = m.classifier.now()
	}
	stream := m.stream
	if stream == nil {
		stream = StreamOfClock(m.source, m.interval, m.clk)
		if c, ok := stream.(io.Closer); ok {
			defer c.Close()
		}
	}
	win := NewWindow(m.windowCap())

	judge := func() { // classify the accumulated window and fan out
		st := m.classifier.ClassifyWindow(win)
		if m.onStatus != nil {
			m.onStatus(st)
		}
	}
	if eof, err := DrainInto(stream, win); err == nil {
		judge()
		if eof {
			return
		}
	} else if m.onError != nil {
		m.onError(err)
	}

	for {
		deadline := clockNow(m.clk).Add(m.interval)
		eof, err := CollectIntoClock(ctx, stream, win, deadline, m.clk)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			if m.onError != nil {
				m.onError(err)
			}
			// Pace retries against a persistently failing source; no
			// status is delivered for a failed interval (matching the
			// snapshot-era behavior).
			if !heartbeat.SleepCtx(ctx, m.clk, deadline.Sub(clockNow(m.clk))) {
				return
			}
			continue
		}
		judge()
		if eof || ctx.Err() != nil {
			return
		}
	}
}

func (m *Monitor) windowCap() int {
	if m.maxRecords > 0 {
		return m.maxRecords
	}
	return m.classifier.Window
}
