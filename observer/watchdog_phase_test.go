package observer_test

import (
	"testing"
	"time"

	"repro/heartbeat"
	"repro/internal/experiments"
	"repro/observer"
	"repro/sim"
)

func TestWatchdogDebounces(t *testing.T) {
	fired := 0
	w := &observer.Watchdog{Threshold: 3, OnRestart: func(observer.Status) { fired++ }}
	flat := observer.Status{Health: observer.Flatlined}
	ok := observer.Status{Health: observer.Healthy}

	// Two stalls then recovery: no restart.
	if w.Observe(flat) || w.Observe(flat) {
		t.Fatal("fired before threshold")
	}
	w.Observe(ok)
	if w.Observe(flat) || w.Observe(flat) {
		t.Fatal("counter not reset by healthy judgment")
	}
	// Third consecutive stall fires.
	if !w.Observe(flat) {
		t.Fatal("did not fire at threshold")
	}
	if fired != 1 || w.Restarts() != 1 {
		t.Fatalf("fired=%d restarts=%d", fired, w.Restarts())
	}
	// Still hung: fires again only after another full threshold.
	if w.Observe(flat) || w.Observe(flat) {
		t.Fatal("fired too soon after restart")
	}
	if !w.Observe(flat) {
		t.Fatal("did not fire on sustained hang")
	}
	if w.Restarts() != 2 {
		t.Fatalf("restarts = %d", w.Restarts())
	}
}

// Re-fire semantics under alternating judgments: a watchdog that has fired
// must re-arm from zero, count only consecutive bad judgments toward the
// next fire, and never fire while healthy judgments keep interleaving —
// however long the alternation runs.
func TestWatchdogRefireAlternating(t *testing.T) {
	flat := observer.Status{Health: observer.Flatlined}
	dead := observer.Status{Health: observer.Dead}
	ok := observer.Status{Health: observer.Healthy}
	slow := observer.Status{Health: observer.Slow}

	w := &observer.Watchdog{Threshold: 2}
	// Strict bad/good alternation never reaches the threshold.
	for i := 0; i < 100; i++ {
		if w.Observe(flat) {
			t.Fatalf("fired on alternation at %d", i)
		}
		good := ok
		if i%2 == 1 {
			good = slow // any non-flatlined, non-dead health resets
		}
		if w.Observe(good) {
			t.Fatalf("fired on healthy judgment at %d", i)
		}
	}
	if w.Restarts() != 0 {
		t.Fatalf("alternation accumulated %d restarts", w.Restarts())
	}

	// A sustained hang fires on every full threshold, mixing flatlined and
	// dead judgments: 10 bad judgments at threshold 2 = 5 fires.
	for i := 0; i < 10; i++ {
		bad := flat
		if i%2 == 1 {
			bad = dead
		}
		fired := w.Observe(bad)
		if want := i%2 == 1; fired != want {
			t.Fatalf("judgment %d: fired=%v, want %v", i, fired, want)
		}
	}
	if w.Restarts() != 5 {
		t.Fatalf("sustained hang fired %d times, want 5", w.Restarts())
	}

	// Recovery one judgment short of a re-fire discards the partial count.
	w.Observe(flat)
	w.Observe(ok)
	if w.Observe(flat) {
		t.Fatal("partial count survived a healthy judgment")
	}
	if !w.Observe(flat) {
		t.Fatal("did not re-fire after a fresh full threshold")
	}
}

func TestWatchdogCountsDeadToo(t *testing.T) {
	w := &observer.Watchdog{Threshold: 2}
	if w.Observe(observer.Status{Health: observer.Dead}) {
		t.Fatal("fired at 1")
	}
	if !w.Observe(observer.Status{Health: observer.Flatlined}) {
		t.Fatal("mixed dead/flatlined did not fire")
	}
}

// End-to-end: a worker that hangs is detected and "restarted" through the
// heartbeat alone.
func TestWatchdogEndToEnd(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	hb.SetTarget(10, 100)
	classifier := &observer.Classifier{Clock: clk, FlatlineFactor: 5}
	source := observer.HeartbeatSource(hb)
	restarted := false
	dog := &observer.Watchdog{Threshold: 2, OnRestart: func(observer.Status) { restarted = true }}

	poll := func() bool {
		snap, err := source.Snapshot(0)
		if err != nil {
			t.Fatal(err)
		}
		return dog.Observe(classifier.Classify(snap))
	}

	// Healthy operation: beat at 20/s, poll every 10 beats.
	for i := 0; i < 50; i++ {
		clk.Advance(50 * time.Millisecond)
		hb.Beat()
		if i%10 == 0 && poll() {
			t.Fatal("restart fired while healthy")
		}
	}
	// The application hangs; the observer keeps polling on its own clock.
	for i := 0; i < 5; i++ {
		clk.Advance(2 * time.Second)
		poll()
	}
	if !restarted {
		t.Fatal("hang not detected")
	}
}

func TestPhaseDetectorSegmentsFig2(t *testing.T) {
	d := &observer.PhaseDetector{RelThreshold: 0.25, MinSamples: 3}
	// Synthetic Figure 2: 13 beats/s, then 24, then 13, with small noise.
	rate := func(beat int) float64 {
		base := 13.0
		if beat >= 100 && beat < 330 {
			base = 24
		}
		if beat%2 == 0 {
			return base + 0.4
		}
		return base - 0.4
	}
	for beat := 1; beat <= 500; beat++ {
		d.Observe(uint64(beat), rate(beat))
	}
	phases := d.Phases()
	if len(phases) != 3 {
		t.Fatalf("detected %d phases, want 3: %+v", len(phases), phases)
	}
	if phases[0].MeanRate < 12 || phases[0].MeanRate > 14 {
		t.Errorf("phase 0 mean = %v", phases[0].MeanRate)
	}
	if phases[1].MeanRate < 23 || phases[1].MeanRate > 25 {
		t.Errorf("phase 1 mean = %v", phases[1].MeanRate)
	}
	if phases[2].MeanRate < 12 || phases[2].MeanRate > 14 {
		t.Errorf("phase 2 mean = %v", phases[2].MeanRate)
	}
	// Boundaries near the true transitions.
	if b := phases[1].StartBeat; b < 100 || b > 110 {
		t.Errorf("phase 1 starts at %d, want ~100", b)
	}
	if b := phases[2].StartBeat; b < 330 || b > 340 {
		t.Errorf("phase 2 starts at %d, want ~330", b)
	}
}

func TestPhaseDetectorIgnoresBlips(t *testing.T) {
	d := &observer.PhaseDetector{MinSamples: 3}
	for beat := 1; beat <= 100; beat++ {
		r := 10.0
		if beat == 50 || beat == 51 {
			r = 30 // two-beat blip, below MinSamples
		}
		d.Observe(uint64(beat), r)
	}
	if got := len(d.Phases()); got != 1 {
		t.Fatalf("blip split phases: %d", got)
	}
}

// The detector finds the three regions in the real Figure 2 series, not
// just an idealized one.
func TestPhaseDetectorOnRealFig2(t *testing.T) {
	r := experiments.Fig2(experiments.Options{EncoderFrames: 300})
	d := &observer.PhaseDetector{RelThreshold: 0.25, MinSamples: 8}
	for i, x := range r.Series.X {
		d.Observe(uint64(x), r.Series.Y[0][i])
	}
	// The 20-beat moving average ramps between regimes, so the detector
	// may report short transitional phases; the sustained phases (>=30
	// beats) must be exactly the paper's three, slow/fast/slow.
	var sustained []observer.Phase
	for _, p := range d.Phases() {
		if p.Beats >= 30 {
			sustained = append(sustained, p)
		}
	}
	if len(sustained) != 3 {
		t.Fatalf("sustained phases = %+v", sustained)
	}
	if sustained[1].MeanRate < 1.4*sustained[0].MeanRate {
		t.Errorf("middle phase %v not clearly faster than first %v", sustained[1].MeanRate, sustained[0].MeanRate)
	}
	if sustained[2].MeanRate > 1.2*sustained[0].MeanRate {
		t.Errorf("final phase %v did not return to the slow regime %v", sustained[2].MeanRate, sustained[0].MeanRate)
	}
}
