package hbfile_test

import (
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"repro/hbfile"
	"repro/heartbeat"
	"repro/sim"
)

func TestLogRoundTrip(t *testing.T) {
	p := filepath.Join(t.TempDir(), "app.hblog")
	w, err := hbfile.CreateLog(p, 20)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(100, 0)
	const n = 50
	for i := uint64(1); i <= n; i++ {
		rec := heartbeat.Record{Seq: i, Time: base.Add(time.Duration(i) * 100 * time.Millisecond), Tag: int64(i * 3)}
		if err := w.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.WriteTarget(9, 11); err != nil {
		t.Fatal(err)
	}
	if w.Count() != n {
		t.Fatalf("writer Count = %d", w.Count())
	}

	r, err := hbfile.OpenLog(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Window() != 20 {
		t.Fatalf("Window = %d", r.Window())
	}
	count, err := r.Count()
	if err != nil || count != n {
		t.Fatalf("Count = %d, %v", count, err)
	}
	// The ENTIRE history is addressable — the reference implementation's
	// unbounded HB_get_history.
	all, err := r.Read(0, n)
	if err != nil || len(all) != n {
		t.Fatalf("Read all = %d records, %v", len(all), err)
	}
	for i, rec := range all {
		if rec.Seq != uint64(i+1) || rec.Tag != int64((i+1)*3) {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
	// Arbitrary middle ranges work.
	mid, err := r.Read(10, 5)
	if err != nil || len(mid) != 5 || mid[0].Seq != 11 {
		t.Fatalf("Read(10, 5) = %+v, %v", mid, err)
	}
	// Clipping at the end.
	tail, err := r.Read(n-2, 100)
	if err != nil || len(tail) != 2 {
		t.Fatalf("Read(n-2, 100) = %d records", len(tail))
	}
	last, err := r.Last(10)
	if err != nil || len(last) != 10 || last[9].Seq != n {
		t.Fatalf("Last(10) = %+v, %v", last, err)
	}
	rate, ok, err := r.Rate(0)
	if err != nil || !ok || rate < 9.99 || rate > 10.01 {
		t.Fatalf("Rate = %v %v %v", rate, ok, err)
	}
	min, max, ok, err := r.Target()
	if err != nil || !ok || min != 9 || max != 11 {
		t.Fatalf("Target = %v %v %v %v", min, max, ok, err)
	}
	if err := w.Close(); err != nil || w.Close() != nil {
		t.Fatal("close not clean/idempotent")
	}
}

func TestLogRejectsRingFileAndViceVersa(t *testing.T) {
	dir := t.TempDir()
	ringPath := filepath.Join(dir, "ring.hb")
	logPath := filepath.Join(dir, "log.hb")
	rw, err := hbfile.Create(ringPath, 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	lw, err := hbfile.CreateLog(logPath, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer lw.Close()
	if _, err := hbfile.OpenLog(ringPath); err == nil {
		t.Fatal("OpenLog accepted a ring file")
	}
	if _, err := hbfile.Open(logPath); err == nil {
		t.Fatal("Open accepted a log file")
	}
}

func TestLogAsHeartbeatSink(t *testing.T) {
	p := filepath.Join(t.TempDir(), "sink.hblog")
	w, err := hbfile.CreateLog(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk), heartbeat.WithSink(w))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	hb.SetTarget(15, 25)
	for i := 0; i < 100; i++ {
		clk.Advance(50 * time.Millisecond)
		hb.Beat()
	}
	if err := hb.SinkErr(); err != nil {
		t.Fatal(err)
	}
	r, err := hbfile.OpenLog(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	rate, ok, err := r.Rate(0)
	if err != nil || !ok || rate < 19.9 || rate > 20.1 {
		t.Fatalf("Rate = %v %v %v", rate, ok, err)
	}
	// Unlike the ring, nothing is ever dropped.
	count, _ := r.Count()
	if count != 100 {
		t.Fatalf("Count = %d, want full history", count)
	}
}

func TestLogValidation(t *testing.T) {
	if _, err := hbfile.CreateLog(filepath.Join(t.TempDir(), "x"), 0); err == nil {
		t.Fatal("zero window accepted")
	}
	w, err := hbfile.CreateLog(filepath.Join(t.TempDir(), "y"), 5)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.WriteRecord(heartbeat.Record{Seq: 0}); err == nil {
		t.Fatal("zero seq accepted")
	}
	if _, err := hbfile.OpenLog(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("missing file opened")
	}
}

// Property: Read(from, n) over any bounds returns exactly the records
// [from, min(from+n, count)) in order.
func TestLogReadRangeProperty(t *testing.T) {
	p := filepath.Join(t.TempDir(), "prop.hblog")
	w, err := hbfile.CreateLog(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	const total = 64
	base := time.Unix(0, 0)
	for i := uint64(1); i <= total; i++ {
		if err := w.WriteRecord(heartbeat.Record{Seq: i, Time: base.Add(time.Duration(i) * time.Second)}); err != nil {
			t.Fatal(err)
		}
	}
	r, err := hbfile.OpenLog(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	f := func(fromRaw, nRaw uint8) bool {
		from := uint64(fromRaw) % (total + 10)
		n := int(nRaw) % (total + 10)
		recs, err := r.Read(from, n)
		if err != nil {
			return false
		}
		want := 0
		if from < total {
			want = n
			if uint64(want) > total-from {
				want = int(total - from)
			}
		}
		if len(recs) != want {
			return false
		}
		for i, rec := range recs {
			if rec.Seq != from+uint64(i)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
