package observer

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"repro/hbfile"
	"repro/heartbeat"
)

// FollowFile tails the heartbeat file at path — ring or append-only log,
// detected automatically — surviving the file being deleted and recreated
// by a restarted producer. A plain FileStream holds the inode it opened:
// once the producer recreates the path, the old reader tails a dead file
// and the stream flatlines until the consumer reopens by hand. FollowFile
// stats the path on idle ticks (a recreation can only surface when the old
// file has gone quiet, so the stat costs nothing on the hot path) and,
// when the path no longer names the opened file, reopens it and
// resynchronizes — redelivering the new life's retained records exactly
// like FileStreamFrom resuming against a recreated file.
//
// The initial open must succeed; after that, transient open failures (the
// producer mid-recreation) are retried on the poll cadence rather than
// surfaced. poll <= 0 selects DefaultPollInterval. The returned stream
// implements io.Closer; Close releases the current reader.
func FollowFile(path string, poll time.Duration) (Stream, error) {
	return FollowFileFrom(path, poll, 0)
}

// FollowFileFrom is FollowFile with the cursor pre-positioned after
// sequence number since (see FileStreamFrom).
func FollowFileFrom(path string, poll time.Duration, since uint64) (Stream, error) {
	return FollowFileClock(path, poll, since, nil)
}

// FollowFileClock is FollowFileFrom on an explicit clock: poll waits (and
// the recreation-detection idle ticks they pace) run on clk's time, so a
// simulated consumer notices a delete/recreate at virtual speed. A nil clk
// is the wall clock.
func FollowFileClock(path string, poll time.Duration, since uint64, clk heartbeat.Clock) (Stream, error) {
	if poll <= 0 {
		poll = DefaultPollInterval
	}
	s := &followStream{path: path, poll: poll, cursor: since, clk: clk}
	if err := s.open(); err != nil {
		return nil, err
	}
	return s, nil
}

// followStream wraps a fileStream with path-level recreation detection.
type followStream struct {
	path   string
	poll   time.Duration
	cursor uint64          // carried across reopens
	clk    heartbeat.Clock // nil = wall clock

	fs     *fileStream // nil between a failed reopen and the next retry
	closer io.Closer
	info   os.FileInfo // identity of the opened file, for os.SameFile
}

// open (re)opens the path, detecting the variant, and positions the new
// reader at the carried cursor. The resynchronization against a shorter
// new life happens inside fileStream.poll (head < cursor → resync to 0).
func (s *followStream) open() error {
	if r, err := hbfile.Open(s.path); err == nil {
		info, serr := r.Stat()
		if serr != nil {
			r.Close()
			return serr
		}
		fs := newRingFileStream(r, s.poll, s.cursor)
		fs.clk = s.clk
		s.fs, s.closer, s.info = fs, r, info
		return nil
	}
	r, err := hbfile.OpenLog(s.path)
	if err != nil {
		return fmt.Errorf("observer: follow %s: %w", s.path, err)
	}
	info, serr := r.Stat()
	if serr != nil {
		r.Close()
		return serr
	}
	fs := newLogFileStream(r, s.poll, s.cursor)
	fs.clk = s.clk
	s.fs, s.closer, s.info = fs, r, info
	return nil
}

// restart drops the current reader after a detected recreation and resets
// the cursor to zero: the inode change proves the path is a new life whose
// sequence space restarted, so the whole retained history of the successor
// is due — a bare cursor carried over would silently skip any new-life
// records numbered at or below it (the cursor-only resync in fileStream
// can only catch the head falling BELOW the cursor; the stat gives this
// stream strictly more information, so it uses it).
func (s *followStream) restart() {
	if s.closer != nil {
		s.closer.Close()
	}
	s.fs, s.closer, s.info = nil, nil, nil
	s.cursor = 0
}

// recreated reports whether the path no longer names the opened file. A
// missing path is not a recreation: the old reader keeps draining the
// deleted-but-open inode until a successor file appears.
func (s *followStream) recreated() bool {
	if s.info == nil {
		return false
	}
	fi, err := os.Stat(s.path)
	if err != nil {
		return false
	}
	return !os.SameFile(s.info, fi)
}

func (s *followStream) Next(ctx context.Context) (Batch, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		if s.fs == nil {
			// A previous reopen failed (producer mid-recreation): retry on
			// the poll cadence; the path healing is the only way forward.
			if err := s.open(); err != nil {
				if werr := s.wait(ctx); werr != nil {
					return Batch{}, werr
				}
				continue
			}
		}
		b, ok, err := s.fs.step()
		if err != nil {
			// A read error from a file that was recreated under us (e.g.
			// truncated below the old offsets) heals by reopening; any
			// other failure is the caller's to see.
			if s.recreated() {
				s.restart()
				continue
			}
			return Batch{}, err
		}
		if ok {
			s.cursor = s.fs.cursor
			return b, nil
		}
		// Idle tick: the one moment a recreation can be outstanding —
		// records already drained from the old inode, nothing new coming.
		if s.recreated() {
			s.restart()
			continue
		}
		if err := s.wait(ctx); err != nil {
			return Batch{}, err
		}
	}
}

func (s *followStream) wait(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-heartbeat.After(s.clk, s.poll):
		return nil
	}
}

// Close releases the underlying reader.
func (s *followStream) Close() error {
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}
