package hbfile

import (
	"path/filepath"
	"testing"
	"time"

	"repro/heartbeat"
)

// WriteRecords must be indistinguishable from per-record WriteRecord calls
// to a reader, while advancing the cursor once.
func TestWriterWriteRecordsBatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.hb")
	w, err := Create(path, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Unix(0, 1000)
	var recs []heartbeat.Record
	for i := uint64(1); i <= 20; i++ {
		recs = append(recs, heartbeat.Record{
			Seq:      i,
			Time:     base.Add(time.Duration(i) * time.Millisecond),
			Tag:      int64(i % 3),
			Producer: int32(i % 4),
		})
	}
	if err := w.WriteRecords(recs[:12]); err != nil {
		t.Fatal(err)
	}
	if w.Cursor() != 12 {
		t.Fatalf("cursor = %d after first batch, want 12", w.Cursor())
	}
	if err := w.WriteRecords(nil); err != nil {
		t.Fatal(err) // empty batch is a no-op
	}
	if err := w.WriteRecords(recs[12:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := r.Last(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 20 {
		t.Fatalf("read back %d records, want 20", len(got))
	}
	for i, g := range got {
		want := recs[i]
		if g.Seq != want.Seq || g.Tag != want.Tag || g.Producer != want.Producer ||
			g.Time.UnixNano() != want.Time.UnixNano() {
			t.Fatalf("record %d = %+v, want %+v", i, g, want)
		}
	}

	if err := w.WriteRecords(recs[:1]); err == nil {
		t.Fatal("WriteRecords on closed writer succeeded")
	}
}

// A zero sequence number is rejected mid-batch.
func TestWriterWriteRecordsRejectsZeroSeq(t *testing.T) {
	w, err := Create(filepath.Join(t.TempDir(), "z.hb"), 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	err = w.WriteRecords([]heartbeat.Record{{Seq: 1, Time: time.Unix(0, 1)}, {Time: time.Unix(0, 2)}})
	if err == nil {
		t.Fatal("zero-seq record accepted")
	}
}
