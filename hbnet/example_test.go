package hbnet_test

import (
	"context"
	"fmt"
	"net"

	"repro/hbnet"
	"repro/heartbeat"
	"repro/observer"
)

// A producer process publishes its live heartbeat over TCP; an observer
// process dials the feed and receives the retained history followed by
// live pushes. The client satisfies observer.Stream, so monitors, hubs,
// and schedulers consume a remote application exactly like a local one.
func ExampleDial() {
	// Application process: publish the live heartbeat.
	hb, _ := heartbeat.New(10)
	for i := 0; i < 5; i++ {
		hb.Beat()
	}
	srv := hbnet.NewServer()
	srv.PublishHeartbeat("video", hb)
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	go srv.Serve(l)
	defer srv.Close()

	// Observer process (any machine): subscribe and judge.
	c, _ := hbnet.Dial(l.Addr().String(), "video") // satisfies observer.Stream
	defer c.Close()
	batch, _ := c.Next(context.Background())
	fmt.Printf("replayed %d records, seqs %d..%d\n",
		len(batch.Records), batch.Records[0].Seq, batch.Records[len(batch.Records)-1].Seq)
	// Output:
	// replayed 5 records, seqs 1..5
}

// A relay merges many upstream feeds into one: subscribers dial the
// relay's merged feed (or its downsampled rollup feed) instead of every
// producer — the fan-in tier that scales observation to fleets. Relays
// compose: another relay can dial this one's merged feed as an upstream.
func ExampleRelay() {
	hbA, _ := heartbeat.New(10)
	hbB, _ := heartbeat.New(10)
	for i := 0; i < 3; i++ {
		hbA.Beat()
	}
	for i := 0; i < 4; i++ {
		hbB.Beat()
	}

	relay := hbnet.NewRelay()
	relay.AddUpstream("a", observer.HeartbeatStream(hbA))
	relay.AddUpstream("b", observer.HeartbeatStream(hbB))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go relay.Run(ctx)

	srv := hbnet.NewServer()
	relay.PublishOn(srv, "merged", "rollup")
	l, _ := net.Listen("tcp", "127.0.0.1:0")
	go srv.Serve(l)
	defer srv.Close()

	// One connection covers both producers, re-sequenced densely.
	c, _ := hbnet.Dial(l.Addr().String(), "merged")
	defer c.Close()
	perUpstream := map[int32]int{}
	for total := 0; total < 7; {
		batch, _ := c.Next(context.Background())
		for _, r := range batch.Records {
			perUpstream[r.Producer]++
			total++
		}
	}
	fmt.Printf("merged: %d from upstream a, %d from upstream b\n", perUpstream[0], perUpstream[1])
	// Output:
	// merged: 3 from upstream a, 4 from upstream b
}
