// Package observer implements the external-observer side of the Application
// Heartbeats framework: reading a heartbeat-enabled application's progress,
// goals, and history, and classifying its health. This is the role the
// paper assigns to the OS, runtime, cloud manager, or system-administration
// tooling (§2.3, §2.4, §2.6, §5.3): observers read heartbeat data the
// application publishes and adapt on the application's behalf — or detect
// that it is hung, slow, erratic, or dead.
package observer

import (
	"fmt"

	"repro/hbfile"
	"repro/heartbeat"
)

// Snapshot is a point-in-time view of an application's heartbeat state.
type Snapshot struct {
	// Count is the total number of heartbeats registered so far.
	Count uint64
	// Window is the application's default averaging window.
	Window int
	// TargetMin and TargetMax are the advertised goal; valid when
	// TargetSet.
	TargetMin, TargetMax float64
	TargetSet            bool
	// Records holds the most recent heartbeats, oldest to newest.
	Records []heartbeat.Record
}

// Rate computes the average heart rate over the last window records of the
// snapshot; window <= 0 uses the application's default window.
func (s Snapshot) Rate(window int) (perSec float64, ok bool) {
	if window <= 0 {
		window = s.Window
	}
	recs := s.Records
	if len(recs) > window {
		recs = recs[len(recs)-window:]
	}
	if len(recs) < 2 {
		return 0, false
	}
	span := recs[len(recs)-1].Time.Sub(recs[0].Time)
	if span <= 0 {
		return 0, false
	}
	return float64(len(recs)-1) / span.Seconds(), true
}

// Source supplies heartbeat snapshots to observers. Implementations exist
// for in-process heartbeats (HeartbeatSource) and for heartbeat ring files
// written by other processes (FileSource).
type Source interface {
	// Snapshot returns the current state with up to maxRecords of the
	// most recent records.
	Snapshot(maxRecords int) (Snapshot, error)
}

// HeartbeatSource adapts an in-process *heartbeat.Heartbeat to Source.
// This is the self-observation path of Figure 1(a) in the paper.
func HeartbeatSource(hb *heartbeat.Heartbeat) Source { return hbSource{hb} }

type hbSource struct{ hb *heartbeat.Heartbeat }

func (s hbSource) Snapshot(maxRecords int) (Snapshot, error) {
	if maxRecords <= 0 {
		maxRecords = s.hb.Window()
	}
	snap := Snapshot{
		Count:   s.hb.Count(),
		Window:  s.hb.Window(),
		Records: s.hb.History(maxRecords),
	}
	snap.TargetMin, snap.TargetMax, snap.TargetSet = s.hb.Target()
	return snap, nil
}

// ThreadSource adapts a per-thread handle to Source, for observers that
// track individual workers.
func ThreadSource(t *heartbeat.Thread, window int) Source { return threadSource{t, window} }

type threadSource struct {
	t      *heartbeat.Thread
	window int
}

func (s threadSource) Snapshot(maxRecords int) (Snapshot, error) {
	if maxRecords <= 0 {
		maxRecords = s.window
	}
	return Snapshot{
		Count:   s.t.Count(),
		Window:  s.window,
		Records: s.t.History(maxRecords),
	}, nil
}

// FileSource adapts an hbfile.Reader to Source. This is the external-
// observation path of Figure 1(b): another process monitoring the
// application through the heartbeat file.
func FileSource(r *hbfile.Reader) Source { return fileSource{r} }

// LogSource adapts an hbfile.LogReader (the append-only full-history
// variant) to Source.
func LogSource(r *hbfile.LogReader) Source { return logSource{r} }

type logSource struct{ r *hbfile.LogReader }

func (s logSource) Snapshot(maxRecords int) (Snapshot, error) {
	if maxRecords <= 0 {
		maxRecords = s.r.Window()
	}
	count, err := s.r.Count()
	if err != nil {
		return Snapshot{}, fmt.Errorf("observer: %w", err)
	}
	recs, err := s.r.Last(maxRecords)
	if err != nil {
		return Snapshot{}, fmt.Errorf("observer: %w", err)
	}
	min, max, ok, err := s.r.Target()
	if err != nil {
		return Snapshot{}, fmt.Errorf("observer: %w", err)
	}
	return Snapshot{
		Count:     count,
		Window:    s.r.Window(),
		TargetMin: min,
		TargetMax: max,
		TargetSet: ok,
		Records:   recs,
	}, nil
}

type fileSource struct{ r *hbfile.Reader }

func (s fileSource) Snapshot(maxRecords int) (Snapshot, error) {
	if maxRecords <= 0 {
		maxRecords = s.r.Window()
	}
	cur, err := s.r.Cursor()
	if err != nil {
		return Snapshot{}, fmt.Errorf("observer: %w", err)
	}
	recs, err := s.r.Last(maxRecords)
	if err != nil {
		return Snapshot{}, fmt.Errorf("observer: %w", err)
	}
	min, max, ok, err := s.r.Target()
	if err != nil {
		return Snapshot{}, fmt.Errorf("observer: %w", err)
	}
	return Snapshot{
		Count:     cur,
		Window:    s.r.Window(),
		TargetMin: min,
		TargetMax: max,
		TargetSet: ok,
		Records:   recs,
	}, nil
}
