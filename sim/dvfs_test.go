package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestFrequencyDefaultsAndClamping(t *testing.T) {
	m := NewMachine(NewClock(time.Time{}), 4, 1000)
	if m.Frequency() != MaxFrequency {
		t.Fatalf("default frequency = %v", m.Frequency())
	}
	if got := m.SetFrequency(0.5); got != 0.5 {
		t.Fatalf("SetFrequency(0.5) = %v", got)
	}
	if got := m.SetFrequency(2); got != MaxFrequency {
		t.Fatalf("SetFrequency(2) = %v", got)
	}
	if got := m.SetFrequency(0); got != MinFrequency {
		t.Fatalf("SetFrequency(0) = %v", got)
	}
}

func TestFrequencyScalesDuration(t *testing.T) {
	clk := NewClock(time.Time{})
	m := NewMachine(clk, 1, 1000)
	w := Work{Ops: 1000, ParallelFrac: 1}
	if d := m.Duration(w); d != time.Second {
		t.Fatalf("full-frequency duration = %v", d)
	}
	m.SetFrequency(0.5)
	if d := m.Duration(w); d != 2*time.Second {
		t.Fatalf("half-frequency duration = %v", d)
	}
}

func TestEnergyAccounting(t *testing.T) {
	clk := NewClock(time.Time{})
	m := NewMachine(clk, 4, 1000)
	if m.Energy() != 0 {
		t.Fatal("fresh machine has energy")
	}
	// 4 cores, full frequency, 1 second of work: 4 × CorePower(1) = 4.
	m.Execute(Work{Ops: 4000, ParallelFrac: 1})
	if e := m.Energy(); math.Abs(e-4*CorePower(1)) > 1e-9 {
		t.Fatalf("energy = %v, want %v", e, 4*CorePower(1))
	}
	m.ResetEnergy()
	// Half frequency: the same work takes 2s but draws CorePower(0.5).
	m.SetFrequency(0.5)
	start := clk.Now()
	m.Execute(Work{Ops: 4000, ParallelFrac: 1})
	if d := clk.Elapsed(start); d != 2*time.Second {
		t.Fatalf("elapsed = %v", d)
	}
	want := 4 * CorePower(0.5) * 2
	if e := m.Energy(); math.Abs(e-want) > 1e-9 {
		t.Fatalf("energy = %v, want %v", e, want)
	}
}

func TestIdleChargesStaticPowerOnly(t *testing.T) {
	clk := NewClock(time.Time{})
	m := NewMachine(clk, 2, 1000)
	m.Idle(3 * time.Second)
	if got := clk.Elapsed(Epoch); got != 3*time.Second {
		t.Fatalf("idle did not advance clock: %v", got)
	}
	want := 2 * IdleCorePower * 3
	if e := m.Energy(); math.Abs(e-want) > 1e-9 {
		t.Fatalf("idle energy = %v, want %v", e, want)
	}
	m.Idle(-time.Second) // no-op
	if e := m.Energy(); math.Abs(e-want) > 1e-9 {
		t.Fatal("negative idle changed energy")
	}
}

// The core DVFS economics: completing the same work slower at lower
// frequency costs less energy than racing and idling until the same
// deadline — because P(f) is convex (cubic) while time is only 1/f.
func TestDVFSBeatsRaceToIdle(t *testing.T) {
	run := func(freq float64) float64 {
		clk := NewClock(time.Time{})
		m := NewMachine(clk, 8, 1000)
		m.SetFrequency(freq)
		deadline := clk.Now().Add(10 * time.Second)
		m.Execute(Work{Ops: 8000 * 5, ParallelFrac: 1}) // half the budget at f=1
		if wait := deadline.Sub(clk.Now()); wait > 0 {
			m.Idle(wait)
		}
		if clk.Now().Before(deadline) {
			t.Fatal("deadline not reached")
		}
		return m.Energy()
	}
	race := run(1.0)
	dvfs := run(0.5)
	if dvfs >= race {
		t.Fatalf("DVFS energy %v >= race-to-idle %v", dvfs, race)
	}
}

// Property: CorePower is monotone in frequency and bounded by the static
// and full-power extremes.
func TestCorePowerMonotoneProperty(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a := MinFrequency + (MaxFrequency-MinFrequency)*float64(aRaw)/255
		b := MinFrequency + (MaxFrequency-MinFrequency)*float64(bRaw)/255
		pa, pb := CorePower(a), CorePower(b)
		if a > b && pa < pb {
			return false
		}
		return pa >= IdleCorePower && pa <= CorePower(MaxFrequency)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
