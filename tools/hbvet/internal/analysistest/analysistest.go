// Package analysistest runs an hbvet analyzer over golden testdata
// packages and checks its filtered findings against // want comments,
// mirroring golang.org/x/tools/go/analysis/analysistest (unavailable in
// this offline build) closely enough that the analyzer tests read the
// same way:
//
//	func TestWallclock(t *testing.T) {
//		analysistest.Run(t, analysistest.TestData(t), wallclock.Analyzer, "a")
//	}
//
// Testdata packages live under testdata/src/<path>. Each expectation is a
// trailing comment on the offending line:
//
//	time.Sleep(d) // want `direct time\.Sleep call`
//
// Every regexp must match a distinct finding on its line, every finding
// must be matched, and — because Run applies the same seam and allow
// filtering as the hbvet driver — a line carrying a justified
// //hbvet:allow comment wants nothing at all, which is how the escape
// hatch itself is golden-tested. Testdata packages may import each other
// (dependencies are analyzed first, so cross-package facts flow) and
// anything in the standard library.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/tools/hbvet/internal/analysis"
	"repro/tools/hbvet/internal/load"
)

// TestData returns the test's testdata directory.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run analyzes the given testdata packages and reports every mismatch
// between findings and // want expectations as a test error.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := &testLoader{
		t:       t,
		src:     filepath.Join(testdata, "src"),
		fset:    token.NewFileSet(),
		loaded:  make(map[string]*loadedPkg),
		facts:   analysis.NewFacts(),
		a:       a,
		running: make(map[string]bool),
	}
	for _, path := range pkgPaths {
		pkg := ld.load(path)
		checkWants(t, ld.fset, pkg)
	}
}

type loadedPkg struct {
	path     string
	files    []*ast.File
	pkg      *types.Package
	findings []analysis.Finding
}

type testLoader struct {
	t       *testing.T
	src     string
	fset    *token.FileSet
	loaded  map[string]*loadedPkg
	imp     types.Importer // export-data importer for non-testdata imports
	facts   *analysis.Facts
	a       *analysis.Analyzer
	running map[string]bool
}

// load parses, type-checks, and analyzes one testdata package (and,
// recursively, the testdata packages it imports — those first, so facts
// flow forward).
func (l *testLoader) load(path string) *loadedPkg {
	l.t.Helper()
	if pkg, ok := l.loaded[path]; ok {
		return pkg
	}
	if l.running[path] {
		l.t.Fatalf("import cycle through testdata package %q", path)
	}
	l.running[path] = true
	defer delete(l.running, path)

	dir := filepath.Join(l.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		l.t.Fatalf("loading testdata package %q: %v", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		file, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			l.t.Fatal(err)
		}
		files = append(files, file)
	}
	if len(files) == 0 {
		l.t.Fatalf("testdata package %q has no Go files", path)
	}

	conf := types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
		if l.isTestdata(ipath) {
			return l.load(ipath).pkg, nil
		}
		return l.external().Import(ipath)
	})}
	info := load.NewInfo()
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		l.t.Fatalf("type-checking testdata package %q: %v", path, err)
	}

	relPath := func(pos token.Pos) string {
		file := l.fset.Position(pos).Filename
		if rel, err := filepath.Rel(l.src, file); err == nil {
			return filepath.ToSlash(rel)
		}
		return file
	}
	findings, err := analysis.RunPackage(&analysis.Package{
		Fset:    l.fset,
		Files:   files,
		Pkg:     tpkg,
		Info:    info,
		RelPath: relPath,
	}, []*analysis.Analyzer{l.a}, l.facts)
	if err != nil {
		l.t.Fatal(err)
	}
	pkg := &loadedPkg{path: path, files: files, pkg: tpkg, findings: findings}
	l.loaded[path] = pkg
	return pkg
}

func (l *testLoader) isTestdata(path string) bool {
	fi, err := os.Stat(filepath.Join(l.src, filepath.FromSlash(path)))
	return err == nil && fi.IsDir()
}

// external lazily builds the export-data importer for everything the
// testdata tree imports from outside itself (stdlib and this module).
func (l *testLoader) external() types.Importer {
	l.t.Helper()
	if l.imp != nil {
		return l.imp
	}
	// Collect every non-testdata import in the whole testdata tree so one
	// `go list` serves the run.
	seen := make(map[string]bool)
	var external []string
	filepath.WalkDir(l.src, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return nil
		}
		file, err := parser.ParseFile(token.NewFileSet(), p, nil, parser.ImportsOnly)
		if err != nil {
			return nil
		}
		for _, imp := range file.Imports {
			ipath := strings.Trim(imp.Path.Value, `"`)
			if !seen[ipath] && !l.isTestdata(ipath) {
				seen[ipath] = true
				external = append(external, ipath)
			}
		}
		return nil
	})
	exports := make(map[string]string)
	if len(external) > 0 {
		pkgs, err := load.ListExports(external)
		if err != nil {
			l.t.Fatal(err)
		}
		exports = pkgs
	}
	l.imp = load.NewExportImporter(l.fset, exports)
	return l.imp
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// wantRe matches one backquoted expectation within a // want comment.
var wantRe = regexp.MustCompile("`([^`]+)`")

// checkWants diffs the package's findings against its // want comments.
func checkWants(t *testing.T, fset *token.FileSet, pkg *loadedPkg) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, file := range pkg.files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				// The marker may open the comment or trail other text (an
				// //hbvet:allow under test, say): one // comment is all a Go
				// line gets, so expectations must be able to share it.
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				text := c.Text[i+len("// want "):]
				pos := fset.Position(c.Slash)
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRe.FindAllStringSubmatch(text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants[k] = append(wants[k], re)
				}
				if len(wants[k]) == 0 {
					t.Errorf("%s:%d: // want comment with no backquoted regexp", pos.Filename, pos.Line)
				}
			}
		}
	}

	got := make(map[key][]analysis.Finding)
	for _, f := range pkg.findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		got[k] = append(got[k], f)
	}

	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	for k := range got {
		if _, ok := wants[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})

	for _, k := range keys {
		expected, found := wants[k], got[k]
		matched := make([]bool, len(found))
		for _, re := range expected {
			ok := false
			for i, f := range found {
				if !matched[i] && re.MatchString(f.Message) {
					matched[i] = true
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("%s:%d: no finding matching %q (have %s)", k.file, k.line, re, messages(found))
			}
		}
		for i, f := range found {
			if !matched[i] {
				t.Errorf("%s:%d: unexpected finding: %s: %s", k.file, k.line, f.Analyzer, f.Message)
			}
		}
	}
}

func messages(fs []analysis.Finding) string {
	if len(fs) == 0 {
		return "none"
	}
	var b strings.Builder
	for i, f := range fs {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%q", f.Message)
	}
	return b.String()
}
