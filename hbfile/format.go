// Package hbfile implements a file-backed heartbeat ring so that external
// processes can observe a Heartbeat-enabled application, mirroring the
// paper's reference implementation ("when the HB_heartbeat function is
// called, a new entry containing a timestamp, tag and thread ID is written
// into a file ... when an external service wants to get information on a
// Heartbeat-enabled program, the corresponding file is read; the target
// heart rates are also written into the appropriate file").
//
// The file holds a fixed-size header followed by a ring of fixed-size
// records. One process writes (the instrumented application, via
// heartbeat.WithSink); any number of processes read concurrently without
// coordinating with the writer. Consistency uses the same discipline as the
// in-memory store: each record embeds its sequence number, the header
// carries a monotone cursor, and targets are guarded by a version field
// bumped odd before and even after each update, so readers detect and retry
// or discard torn data instead of consuming it. This is a seqlock over a
// file — the closest idiomatic Go analogue of the shared memory buffer the
// paper standardizes for hardware observers.
package hbfile

import (
	"encoding/binary"
	"fmt"

	"repro/heartbeat"
)

// Format constants. Version bumps on any layout change.
const (
	Magic      = "APPHBv1\x00"
	Version    = 1
	HeaderSize = 128
	RecordSize = 32
)

// Header field offsets.
const (
	offMagic      = 0  // 8 bytes
	offVersion    = 8  // uint32
	offRecordSize = 12 // uint32
	offCapacity   = 16 // uint32
	offWindow     = 20 // uint32
	offPID        = 24 // uint64
	offTargetVer  = 32 // uint64, odd while target update in progress
	offTargetMin  = 40 // float64 bits
	offTargetMax  = 48 // float64 bits
	offCursor     = 56 // uint64, total records ever written
)

// Record field offsets (within a 32-byte record).
const (
	recOffSeq      = 0  // uint64
	recOffTime     = 8  // int64 unix nanos
	recOffTag      = 16 // int64
	recOffProducer = 24 // int32
)

var byteOrder = binary.LittleEndian

// header is the decoded file header (static fields only; cursor and target
// are re-read on demand since they change continuously).
type header struct {
	version    uint32
	recordSize uint32
	capacity   uint32
	window     uint32
	pid        uint64
}

func encodeStaticHeader(h header) []byte {
	buf := make([]byte, HeaderSize)
	copy(buf[offMagic:], Magic)
	byteOrder.PutUint32(buf[offVersion:], h.version)
	byteOrder.PutUint32(buf[offRecordSize:], h.recordSize)
	byteOrder.PutUint32(buf[offCapacity:], h.capacity)
	byteOrder.PutUint32(buf[offWindow:], h.window)
	byteOrder.PutUint64(buf[offPID:], h.pid)
	return buf
}

func decodeStaticHeader(buf []byte) (header, error) {
	if len(buf) < HeaderSize {
		return header{}, fmt.Errorf("hbfile: short header (%d bytes)", len(buf))
	}
	if string(buf[offMagic:offMagic+8]) != Magic {
		return header{}, fmt.Errorf("hbfile: bad magic %q", buf[offMagic:offMagic+8])
	}
	h := header{
		version:    byteOrder.Uint32(buf[offVersion:]),
		recordSize: byteOrder.Uint32(buf[offRecordSize:]),
		capacity:   byteOrder.Uint32(buf[offCapacity:]),
		window:     byteOrder.Uint32(buf[offWindow:]),
		pid:        byteOrder.Uint64(buf[offPID:]),
	}
	if h.version != Version {
		return header{}, fmt.Errorf("hbfile: unsupported version %d", h.version)
	}
	if h.recordSize != RecordSize {
		return header{}, fmt.Errorf("hbfile: unsupported record size %d", h.recordSize)
	}
	if h.capacity == 0 {
		return header{}, fmt.Errorf("hbfile: zero capacity")
	}
	return h, nil
}

func encodeRecord(r heartbeat.Record) []byte {
	buf := make([]byte, RecordSize)
	byteOrder.PutUint64(buf[recOffSeq:], r.Seq)
	byteOrder.PutUint64(buf[recOffTime:], uint64(r.Time.UnixNano()))
	byteOrder.PutUint64(buf[recOffTag:], uint64(r.Tag))
	byteOrder.PutUint32(buf[recOffProducer:], uint32(r.Producer))
	return buf
}

func decodeRecord(buf []byte) heartbeat.Record {
	return heartbeat.Record{
		Seq:      byteOrder.Uint64(buf[recOffSeq:]),
		Time:     unixTime(int64(byteOrder.Uint64(buf[recOffTime:]))),
		Tag:      int64(byteOrder.Uint64(buf[recOffTag:])),
		Producer: int32(byteOrder.Uint32(buf[recOffProducer:])),
	}
}

// slotOffset returns the file offset of the ring slot holding seq.
func slotOffset(seq uint64, capacity uint32) int64 {
	return HeaderSize + int64((seq-1)%uint64(capacity))*RecordSize
}
