// Package sim provides a deterministic simulated multicore machine: a
// manually advanced clock, an Amdahl-law execution-time model with dynamic
// core allocation, and core-failure injection.
//
// The paper evaluates Application Heartbeats on an eight-core x86 server by
// measuring heart rate while an external scheduler grants and revokes cores
// (and, in the fault-tolerance study, while cores "die"). This package is
// the substitute substrate for that testbed: every work item carries an
// abstract operation count and a parallel fraction, and executing it
// advances the simulated clock by ops / (coreRate × speedup(cores)). The
// feedback loop the paper studies — work → elapsed time → heart rate →
// adaptation → resources → work — is preserved exactly, but runs
// deterministically and in microseconds of host time, independent of host
// core count.
package sim

import (
	"sync"
	"time"
)

// Epoch is the default simulation start time. Any fixed instant works; this
// one makes timestamps easy to read in dumps.
var Epoch = time.Date(2009, time.August, 7, 0, 0, 0, 0, time.UTC)

// Clock is a manually advanced clock. It implements heartbeat.Clock — and
// heartbeat.WaitClock: goroutines may wait on it through After (see
// timer.go), and Advance fires their timers in deadline order as it sweeps
// past them. The zero value is invalid; use NewClock.
type Clock struct {
	mu       sync.Mutex
	now      time.Time
	timers   timerHeap
	timerSeq uint64
	armed    chan struct{} // non-nil while awaitTimer waits for a registration
}

// NewClock returns a Clock reading start. A zero start uses Epoch.
func NewClock(start time.Time) *Clock {
	if start.IsZero() {
		start = Epoch
	}
	return &Clock{now: start}
}

// Now returns the current simulated time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d, firing every timer whose deadline
// the sweep passes — each at its own deadline, in order. Negative d panics:
// simulated time, like real time, never runs backwards.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic("sim: negative clock advance")
	}
	c.mu.Lock()
	target := c.now.Add(d)
	c.fireDueLocked(target)
	c.now = target
	c.mu.Unlock()
}

// AdvanceSeconds moves the clock forward by s seconds.
func (c *Clock) AdvanceSeconds(s float64) {
	c.Advance(time.Duration(s * float64(time.Second)))
}

// Elapsed returns the time elapsed since start.
func (c *Clock) Elapsed(start time.Time) time.Duration {
	return c.Now().Sub(start)
}
