//go:build !race

package simnet

// raceEnabled reports whether the race detector is compiled in; the scale
// tests shrink or skip their fleets under it (a 100k-producer run under
// -race costs minutes, and the race coverage it adds over the small fleet
// is nil — the code paths are identical).
const raceEnabled = false
