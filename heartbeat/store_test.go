package heartbeat

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// Both store implementations must agree on everything observable when
// driven sequentially: the locked store is the oracle for the lock-free one.
func TestStoreEquivalenceProperty(t *testing.T) {
	f := func(capRaw uint8, ops []uint16) bool {
		capacity := int(capRaw)%50 + 2
		lf := newLockfreeStore(capacity)
		lk := newLockedStore(capacity)
		now := int64(1)
		for _, op := range ops {
			tag := int64(op)
			now += int64(op%97) + 1
			s1 := lf.append(now, tag, 3)
			s2 := lk.append(now, tag, 3)
			if s1 != s2 {
				return false
			}
		}
		if lf.total() != lk.total() || lf.capacity() != lk.capacity() {
			return false
		}
		for _, n := range []int{0, 1, capacity / 2, capacity, capacity + 10} {
			a, b := lf.last(n), lk.last(n)
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Records returned by the lock-free store under concurrent writers must
// never be torn: we encode a checksum relation between tag and time and
// verify every record read maintains it.
func TestLockfreeStoreNoTornReads(t *testing.T) {
	const (
		writers   = 8
		perWriter = 2000
		capacity  = 64 // small: force heavy wraparound
	)
	s := newLockfreeStore(capacity)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Readers hammer last() while writers wrap the ring.
	var torn atomic.Int64
	var readerWg sync.WaitGroup
	for r := 0; r < 4; r++ {
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rec := range s.last(capacity) {
					// invariant stamped by the writers: time == tag*2+7
					if rec.Time.UnixNano() != rec.Tag*2+7 {
						torn.Add(1)
						return
					}
				}
			}
		}()
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				tag := int64(w*perWriter + i)
				s.append(tag*2+7, tag, int32(w))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWg.Wait()

	if torn.Load() != 0 {
		t.Fatalf("observed %d torn records", torn.Load())
	}
	if got := s.total(); got != writers*perWriter {
		t.Fatalf("total = %d, want %d", got, writers*perWriter)
	}
	// After quiescence every retained record must be valid and dense-ish.
	recs := s.last(capacity)
	if len(recs) != capacity {
		t.Fatalf("retained %d records, want %d", len(recs), capacity)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatalf("records out of order: %d then %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
}

func TestLockfreeReadStates(t *testing.T) {
	s := newLockfreeStore(4)
	if _, ok := s.read(0); ok {
		t.Fatal("read(0) ok")
	}
	if _, ok := s.read(1); ok {
		t.Fatal("read of unwritten slot ok")
	}
	for i := int64(1); i <= 6; i++ {
		s.append(i, i, 0)
	}
	// seq 1 and 2 have been overwritten by 5 and 6 (capacity 4).
	if _, ok := s.read(1); ok {
		t.Fatal("read of overwritten record ok")
	}
	r, ok := s.read(5)
	if !ok || r.Tag != 5 || r.Time != time.Unix(0, 5) {
		t.Fatalf("read(5) = %+v, %v", r, ok)
	}
}

func TestConcurrentBeatsAllCounted(t *testing.T) {
	hb, err := New(10, WithCapacity(1<<14))
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, each = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				hb.Beat()
			}
		}()
	}
	wg.Wait()
	if got := hb.Count(); got != goroutines*each {
		t.Fatalf("Count = %d, want %d", got, goroutines*each)
	}
	recs := hb.History(goroutines * each)
	if len(recs) != goroutines*each {
		t.Fatalf("History kept %d records, want %d", len(recs), goroutines*each)
	}
	seen := make(map[uint64]bool, len(recs))
	for _, r := range recs {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}
