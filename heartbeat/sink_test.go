package heartbeat_test

import (
	"errors"
	"testing"
	"time"

	"repro/heartbeat"
)

type recordingSink struct {
	records []heartbeat.Record
	targets [][2]float64
	err     error
	closed  bool
}

func (s *recordingSink) WriteRecord(r heartbeat.Record) error {
	if s.err != nil {
		return s.err
	}
	s.records = append(s.records, r)
	return nil
}

func (s *recordingSink) WriteTarget(min, max float64) error {
	if s.err != nil {
		return s.err
	}
	s.targets = append(s.targets, [2]float64{min, max})
	return nil
}

func (s *recordingSink) Close() error {
	s.closed = true
	return nil
}

func TestSinkReceivesRecordsAndTargets(t *testing.T) {
	sink := &recordingSink{}
	hb, clk := newTestHB(t, 5, heartbeat.WithSink(sink))
	if err := hb.SetTarget(3, 4); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Millisecond)
	hb.BeatTag(11)
	hb.Beat()
	if len(sink.records) != 2 {
		t.Fatalf("sink got %d records", len(sink.records))
	}
	if sink.records[0].Tag != 11 || sink.records[0].Seq != 1 || sink.records[1].Seq != 2 {
		t.Fatalf("sink records = %+v", sink.records)
	}
	if len(sink.targets) != 1 || sink.targets[0] != [2]float64{3, 4} {
		t.Fatalf("sink targets = %+v", sink.targets)
	}
	if err := hb.SinkErr(); err != nil {
		t.Fatal(err)
	}
}

func TestSinkErrorSurfacesWithoutBreakingBeats(t *testing.T) {
	boom := errors.New("disk full")
	sink := &recordingSink{err: boom}
	hb, _ := newTestHB(t, 5, heartbeat.WithSink(sink))
	hb.Beat()
	hb.Beat()
	if hb.Count() != 2 {
		t.Fatalf("in-memory beats lost: %d", hb.Count())
	}
	if err := hb.SinkErr(); !errors.Is(err, boom) {
		t.Fatalf("SinkErr = %v", err)
	}
	// Target write errors surface too.
	if err := hb.SetTarget(1, 2); err != nil {
		t.Fatal(err) // SetTarget itself succeeds; the sink error is async
	}
	if err := hb.SinkErr(); !errors.Is(err, boom) {
		t.Fatalf("SinkErr after target = %v", err)
	}
}

func TestCloseClosesSink(t *testing.T) {
	sink := &recordingSink{}
	hb, _ := newTestHB(t, 5, heartbeat.WithSink(sink))
	if err := hb.Close(); err != nil {
		t.Fatal(err)
	}
	if !sink.closed {
		t.Fatal("sink not closed")
	}
}

func TestSinkFunc(t *testing.T) {
	var got []int64
	hb, _ := newTestHB(t, 5, heartbeat.WithSink(heartbeat.SinkFunc(func(r heartbeat.Record) error {
		got = append(got, r.Tag)
		return nil
	})))
	hb.BeatTag(1)
	hb.BeatTag(2)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("SinkFunc got %v", got)
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	a, b := &recordingSink{}, &recordingSink{}
	var funcCalls int
	fn := heartbeat.SinkFunc(func(heartbeat.Record) error { funcCalls++; return nil })
	hb, _ := newTestHB(t, 5, heartbeat.WithSink(heartbeat.MultiSink(a, fn, b)))
	hb.SetTarget(5, 6)
	hb.Beat()
	if len(a.records) != 1 || len(b.records) != 1 || funcCalls != 1 {
		t.Fatalf("fan-out: a=%d fn=%d b=%d", len(a.records), funcCalls, len(b.records))
	}
	// Targets reach only TargetSinks; the plain SinkFunc is skipped.
	if len(a.targets) != 1 || len(b.targets) != 1 {
		t.Fatalf("targets: a=%d b=%d", len(a.targets), len(b.targets))
	}
}

func TestMultiSinkReturnsFirstError(t *testing.T) {
	boom := errors.New("boom")
	ok := &recordingSink{}
	bad := &recordingSink{err: boom}
	hb, _ := newTestHB(t, 5, heartbeat.WithSink(heartbeat.MultiSink(ok, bad)))
	hb.Beat()
	if err := hb.SinkErr(); !errors.Is(err, boom) {
		t.Fatalf("SinkErr = %v", err)
	}
	// The healthy sink still received the record.
	if len(ok.records) != 1 {
		t.Fatalf("healthy sink records = %d", len(ok.records))
	}
}
