package experiments

import (
	"fmt"

	"repro/control"
	"repro/heartbeat"
	"repro/internal/parsec"
	"repro/internal/plot"
	"repro/observer"
	"repro/scheduler"
	"repro/sim"
)

// schedExperiment runs one §5.3 external-scheduler experiment: the
// instrumented application beats as it works, and the scheduler — observing
// only heartbeats and the advertised target window — grows and shrinks the
// core allocation.
func schedExperiment(id string, w parsec.SchedWorkload, paperNote string) Result {
	clk := sim.NewClock(sim.Epoch)
	m := sim.NewMachine(clk, 8, refCoreRate)
	hb, err := heartbeat.New(w.Window, heartbeat.WithClock(clk))
	if err != nil {
		panic(err)
	}
	if err := hb.SetTarget(w.TargetMin, w.TargetMax); err != nil {
		panic(err)
	}
	m.SetCores(1) // the paper's scheduler starts every application on one core
	sched, err := scheduler.New(
		observer.HeartbeatSource(hb), m,
		scheduler.StepperPolicy{Stepper: &control.Stepper{TargetMin: w.TargetMin, TargetMax: w.TargetMax}},
		scheduler.WithWindow(w.Window),
	)
	if err != nil {
		panic(err)
	}

	series := &plot.Series{
		Title:  fmt.Sprintf("%s: %s under the external scheduler", id, w.Name),
		XLabel: "heartbeat",
		Cols:   []string{"rate", "cores", "target_min", "target_max"},
	}
	enteredAt := -1
	maxCores, finalCores := 1, 1
	for beat := 1; beat <= w.Beats; beat++ {
		m.Execute(w.Work(refCoreRate, beat))
		hb.Beat()
		rate, ok := hb.Rate(0)
		if !ok {
			rate = 0
		}
		series.Add(float64(beat), rate, float64(m.Cores()), w.TargetMin, w.TargetMax)
		if ok && enteredAt == -1 && rate >= w.TargetMin && rate <= w.TargetMax {
			enteredAt = beat
		}
		if beat%w.CheckEvery == 0 {
			s, err := sched.Step()
			if err != nil {
				panic(err)
			}
			if s.Cores > maxCores {
				maxCores = s.Cores
			}
			finalCores = s.Cores
		}
	}
	return Result{
		ID: id, Title: series.Title, Series: series,
		Notes: []string{
			fmt.Sprintf("target window [%g, %g] beats/s entered at heartbeat %d", w.TargetMin, w.TargetMax, enteredAt),
			fmt.Sprintf("peak cores %d, final cores %d", maxCores, finalCores),
			paperNote,
		},
	}
}

// Fig5 reproduces Figure 5: bodytrack, target 2.5-3.5 beats/s — ramp to
// seven cores, an eighth under the load bump, then reclamation down to a
// single core when the load collapses.
func Fig5(Options) Result {
	return schedExperiment("fig5", parsec.BodytrackSched(),
		"paper: 7 cores to enter window, 8th at beat ~102, reclaimed to 1 core after beat 141")
}

// Fig6 reproduces Figure 6: streamcluster held inside the narrow 0.50-0.55
// beats/s window from roughly the twenty-second heartbeat.
func Fig6(Options) Result {
	return schedExperiment("fig6", parsec.StreamclusterSched(),
		"paper: target window reached by heartbeat ~22 and held")
}

// Fig7 reproduces Figure 7: x264 held at 30-35 beats/s with a mid-size core
// allocation, absorbing two spikes where easy content drives the rate past
// 45 beats/s.
func Fig7(Options) Result {
	return schedExperiment("fig7", parsec.X264Sched(),
		"paper: window held with 4-6 cores; two transient spikes above 45 beats/s absorbed")
}
