package hbshm

import (
	"context"
	"errors"
	"io"
	"sync"
	"time"

	"repro/heartbeat"
	"repro/observer"
)

// maxStreamBatch pages very large backlogs so one Next never materializes
// more records than the wire layer would accept in a single frame.
const maxStreamBatch = 1 << 16

// Stream adapts a Reader to observer.Stream: an incremental, cursor-based
// view with the same replay-resync-loss semantics as every other stream
// in the system — records newer than the cursor delivered oldest to
// newest, lapped records surfacing exactly once as Missed, a recreated
// region resynchronizing from the start, io.EOF once the writer closed
// and everything published was delivered. The idle tick is one atomic
// load of the shared head word every poll interval.
//
// Like every Stream, it is a single-consumer cursor: calls to Next must
// not overlap. A consumer done with each batch before the next Next can
// hand it back with Recycle, making the whole observation path
// allocation-free.
var _ observer.Stream = (*Stream)(nil)

type Stream struct {
	r      *Reader
	poll   time.Duration
	cursor uint64
	clk    heartbeat.Clock // nil = wall clock; paces the idle-tick waits

	// free is the recycled record slice (Recycle); see the hbnet client's
	// recycler for the contract. Guarded by freeMu: Recycle may be called
	// from the goroutine that consumed the batch.
	freeMu sync.Mutex
	free   []heartbeat.Record
}

// StreamFrom returns a Stream over r resuming after sequence number since
// (0 streams the retained history first). poll paces idle checks (<= 0
// selects observer.DefaultPollInterval); clk interprets the waits (nil is
// the wall clock — a virtual clock makes an idle tail a simulation event).
func StreamFrom(r *Reader, poll time.Duration, since uint64, clk heartbeat.Clock) *Stream {
	if poll <= 0 {
		poll = observer.DefaultPollInterval
	}
	return &Stream{r: r, poll: poll, cursor: since, clk: clk}
}

// Next implements observer.Stream.
func (s *Stream) Next(ctx context.Context) (observer.Batch, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		b, ok, err := s.step()
		if err != nil {
			return observer.Batch{}, err
		}
		if ok {
			return b, nil
		}
		// Check cancellation before arming a poll timer: a Next that is
		// already cancelled costs one head load, not a timer allocation.
		select {
		case <-ctx.Done():
			return observer.Batch{}, ctx.Err()
		default:
		}
		select {
		case <-ctx.Done():
			return observer.Batch{}, ctx.Err()
		case <-heartbeat.After(s.clk, s.poll):
		}
	}
}

// step performs one non-blocking cursor check: (batch, true, nil) when new
// records (or a detected loss) advanced the cursor, (zero, false, nil) on
// an idle tick, io.EOF at stream end.
func (s *Stream) step() (observer.Batch, bool, error) {
	s.freeMu.Lock()
	buf := s.free
	s.free = nil
	s.freeMu.Unlock()
	putBack := func() {
		s.freeMu.Lock()
		if s.free == nil {
			s.free = buf
		}
		s.freeMu.Unlock()
	}
	for {
		recs, cur, err := s.r.ReadSinceInto(s.cursor, maxStreamBatch, buf)
		if err != nil {
			putBack() // EOF and failures deliver no records: keep the buffer
			if errors.Is(err, io.EOF) {
				return observer.Batch{}, false, io.EOF
			}
			return observer.Batch{}, false, err
		}
		if cur < s.cursor {
			// The region's head is behind the cursor: the region was
			// recreated by a restarted producer, or the cursor came from a
			// previous life of it. Resynchronize from the beginning
			// (parity with fileStream and Subscription); the records
			// between the two lives are unknowable, so not Missed.
			s.cursor = 0
			continue
		}
		if cur == s.cursor {
			putBack() // idle tick: keep the buffer for the next delivery
			return observer.Batch{}, false, nil
		}
		min, max, ok, terr := s.r.Target()
		if terr != nil {
			putBack()
			return observer.Batch{}, false, terr
		}
		b := observer.Batch{Records: recs, Count: cur, Window: s.r.Window(),
			TargetMin: min, TargetMax: max, TargetSet: ok}
		if d := cur - s.cursor; d > uint64(len(recs)) {
			b.Missed = d - uint64(len(recs))
		}
		s.cursor = cur
		return b, true, nil
	}
}

// Recycle hands a delivered batch's record slice back for reuse by the
// next Next (the recycling contract hbnet.BatchRecycler names). Only call
// it when the batch is completely consumed.
func (s *Stream) Recycle(b observer.Batch) {
	if cap(b.Records) == 0 {
		return
	}
	s.freeMu.Lock()
	if s.free == nil {
		s.free = b.Records[:0]
	}
	s.freeMu.Unlock()
}

// Close releases the underlying reader's mapping.
func (s *Stream) Close() error { return s.r.Close() }
