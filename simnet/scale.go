package simnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/hbnet"
	"repro/internal/loadgen"
	"repro/internal/simcheck"
	"repro/sim"
)

// This file is the scale half of the matrix: where scenario.go proves the
// delivery contract with goroutine-per-producer fidelity at N ≤ a handful,
// ScaleScenario proves the same contract at 10k–1M producers. The fleet is
// synthetic (package loadgen: one pump goroutine, producers as heap
// entries), the relay tree is real (leaf relays subscribe the fleet's app
// streams, a root relay dials every leaf's merged AND rollup feeds), and
// the whole run rides sim.Clock/AutoAdvance, so a five-virtual-second
// million-producer run costs only the events in it. The run's verdict is
// the usual simcheck conservation ledger plus the two budgets the scale
// axis exists to police: p99 record→consumer virtual latency, and live
// heap bytes per producer (the O(apps)-not-O(producers) root-state claim,
// checked against an explicit ceiling).

// ScaleScenario is one generated scale configuration. Zero values select
// the noted defaults.
type ScaleScenario struct {
	Seed      int64
	Producers int           // synthetic producers (default 10k)
	Apps      int           // applications the producers spread over (default 32)
	Leaves    int           // leaf relays (default 4)
	Duration  time.Duration // virtual horizon (default 5s)
	BeatEvery time.Duration // base inter-beat interval (default 1s)
	PumpTick  time.Duration // loadgen pump quantum (default 10ms)
	Rollup    time.Duration // relay rollup interval (default 500ms)
	Jitter    float64       // per-beat rate jitter fraction
	ZipfS     float64       // app-popularity skew exponent
	ChurnFrac float64       // fraction of producers that leave mid-run
	Bursts    int           // correlated silence bursts
	BurstFrac float64       // producer-id share each burst silences
	BurstLen  time.Duration // silence window length
	MaxLink   time.Duration // per-link latency drawn in [0, MaxLink]
	Handoffs  int           // mid-run app-stream re-homes between leaves (needs Leaves >= 2)

	MergedRetain int // relay replay-ring retention (default 1<<17)

	// The budgets. P99Ceiling bounds the p99 record-time → consumer
	// delivery virtual lag; BytesPerProducerCeiling bounds live heap
	// growth per producer, measured by runtime.ReadMemStats around the
	// run. Both fail the run when exceeded (default 2.5s, 512B +
	// 64MiB/Producers — the affine shape lets the fixed tier cost, rings
	// and frame caches, amortize away as the fleet grows).
	P99Ceiling              time.Duration
	BytesPerProducerCeiling float64
}

func (sc ScaleScenario) withDefaults() ScaleScenario {
	if sc.Producers <= 0 {
		sc.Producers = 10_000
	}
	if sc.Apps <= 0 {
		sc.Apps = 32
	}
	if sc.Apps > sc.Producers {
		sc.Apps = sc.Producers
	}
	if sc.Leaves <= 0 {
		sc.Leaves = 4
	}
	if sc.Leaves > sc.Apps {
		sc.Leaves = sc.Apps
	}
	if sc.Duration <= 0 {
		sc.Duration = 5 * time.Second
	}
	if sc.BeatEvery <= 0 {
		sc.BeatEvery = time.Second
	}
	if sc.PumpTick <= 0 {
		sc.PumpTick = 10 * time.Millisecond
	}
	if sc.Rollup <= 0 {
		sc.Rollup = 500 * time.Millisecond
	}
	if sc.MergedRetain <= 0 {
		sc.MergedRetain = 1 << 17
	}
	if sc.P99Ceiling <= 0 {
		sc.P99Ceiling = 2500 * time.Millisecond
	}
	if sc.BytesPerProducerCeiling <= 0 {
		sc.BytesPerProducerCeiling = 512 + float64(64<<20)/float64(sc.Producers)
	}
	return sc
}

func (sc ScaleScenario) String() string {
	return fmt.Sprintf("seed=%d producers=%d apps=%d leaves=%d dur=%v beat=%v churn=%.2f bursts=%d",
		sc.Seed, sc.Producers, sc.Apps, sc.Leaves, sc.Duration, sc.BeatEvery, sc.ChurnFrac, sc.Bursts)
}

// GenerateScale expands (seed, producers) into a scale scenario, drawing
// skew, churn and burst shape from the seed so a failing run replays from
// `SCALE_SEED=<seed>` alone. The beat rate scales down as the fleet grows
// so total record volume stays bounded (≈3M records at 1M producers).
func GenerateScale(seed int64, producers int) ScaleScenario {
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1e))
	sc := ScaleScenario{
		Seed:      seed,
		Producers: producers,
		Apps:      32,
		Leaves:    4,
		Duration:  5 * time.Second,
		Rollup:    500 * time.Millisecond,
		PumpTick:  10 * time.Millisecond,
		Jitter:    0.15 + 0.2*rng.Float64(),
		ZipfS:     1.02 + 0.4*rng.Float64(),
		ChurnFrac: 0.1 + 0.2*rng.Float64(),
		Bursts:    1 + rng.Intn(2),
		BurstFrac: 0.2 + 0.3*rng.Float64(),
		BurstLen:  time.Duration((0.5 + 0.5*rng.Float64()) * float64(time.Second)),
		MaxLink:   time.Duration(rng.Intn(3)) * time.Millisecond,
	}
	if producers < 1000 {
		sc.Apps, sc.Leaves = 8, 2
	}
	if producers > 200_000 {
		// Coarser pump quanta at extreme scale: fewer, larger batches.
		sc.PumpTick = 25 * time.Millisecond
	}
	beats := 5
	if producers > 0 {
		if b := 3_000_000 / producers; b < beats {
			beats = b
		}
	}
	if beats < 2 {
		beats = 2
	}
	sc.BeatEvery = sc.Duration / time.Duration(beats)
	// Elastic-membership churn: every scale run re-homes a few app streams
	// between leaves mid-run through the cursor-preserving handoff path.
	// Drawn last so earlier seeds' shapes are unchanged by its addition.
	sc.Handoffs = 1 + rng.Intn(3)
	return sc
}

// ScaleStats summarizes one scale run.
type ScaleStats struct {
	Producers int
	Delivered uint64
	Missed    uint64

	Left     int // producers that churned out
	Rejoined int // producers that churned back in (a new Life)
	Silenced int // producer-burst memberships applied
	Handoffs int // app streams re-homed between leaves mid-run
	Shed     uint64 // records shed to backpressure across the tree's rings

	P50, P95, P99 time.Duration // record-time → consumer delivery, virtual

	HeapBytes        uint64 // live-heap growth over the run (GC'd before/after)
	BytesPerProducer float64

	RootApps       int // root relay raw upstreams — the leaves, not the fleet
	RootRollupApps int // compacted applications at the root — the apps, not the fleet

	SimSeconds  float64
	RealSeconds float64
}

// Run executes the scale scenario and verifies the delivery contract and
// its budgets. The returned error describes the first violated invariant;
// callers report SCALE_SEED for exact replay.
func (sc ScaleScenario) Run() (ScaleStats, error) {
	sc = sc.withDefaults()
	stats := ScaleStats{Producers: sc.Producers}

	// Heap baseline before anything in the run is allocated: the delta at
	// the end, with the whole tier still live, is what the run costs.
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	realStart := time.Now() //hbvet:allow wallclock -- the real-time budget bounds the harness itself, not a simulated component

	clk := sim.NewClock(time.Time{})
	nw := New(clk)
	rng := rand.New(rand.NewSource(sc.Seed ^ 0x5ca1e))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go clk.AutoAdvance(ctx, 0)

	fleet := loadgen.New(loadgen.Config{
		Seed:      sc.Seed,
		Producers: sc.Producers,
		Apps:      sc.Apps,
		BeatEvery: sc.BeatEvery,
		Jitter:    sc.Jitter,
		ZipfS:     sc.ZipfS,
		Duration:  sc.Duration,
		ChurnFrac: sc.ChurnFrac,
		Bursts:    sc.Bursts,
		BurstFrac: sc.BurstFrac,
		BurstLen:  sc.BurstLen,
		PumpTick:  sc.PumpTick,
	}, clk)

	// Leaf tier: each leaf relay subscribes a round-robin share of the
	// fleet's app streams — producers never touch a relay; applications do.
	type scaleNode struct {
		relay *hbnet.Relay
		srv   *hbnet.Server
		addr  string
	}
	link := func() time.Duration {
		if sc.MaxLink <= 0 {
			return 0
		}
		return time.Duration(rng.Int63n(int64(sc.MaxLink + 1)))
	}
	newServer := func(n *scaleNode) error {
		srv := hbnet.NewServer(
			hbnet.WithHandshakeTimeout(2*time.Second),
			hbnet.WithServerClock(clk))
		if err := n.relay.PublishOn(srv, "merged", "rollup"); err != nil {
			return err
		}
		ln, err := nw.Listen(n.addr)
		if err != nil {
			return err
		}
		go srv.Serve(ln)
		n.srv = srv
		return nil
	}
	leaves := make([]*scaleNode, sc.Leaves)
	for li := range leaves {
		relay := hbnet.NewRelay(
			hbnet.WithRelayClock(clk),
			hbnet.WithRollupInterval(sc.Rollup),
			hbnet.WithMergedRetain(sc.MergedRetain),
		)
		for ai := 0; ai < fleet.Apps(); ai++ {
			if ai%sc.Leaves != li {
				continue
			}
			if err := relay.AddUpstream(fleet.AppName(ai), fleet.Stream(ai)); err != nil {
				return stats, err
			}
		}
		n := &scaleNode{relay: relay, addr: fmt.Sprintf("leaf%d", li)}
		if err := newServer(n); err != nil {
			return stats, err
		}
		leaves[li] = n
		go relay.Run(ctx)
		defer relay.Close()
		defer n.srv.Close()
	}

	// Root tier: dial every leaf's merged feed (records) and rollup feed
	// (already-downsampled windows). The rollup upstreams feed the root's
	// compactor, so root rollup state is one window per application —
	// O(apps) — however many producers beat below.
	root := hbnet.NewRelay(
		hbnet.WithRelayClock(clk),
		hbnet.WithRollupInterval(sc.Rollup),
		hbnet.WithMergedRetain(sc.MergedRetain),
	)
	for li, leaf := range leaves {
		nw.SetLatency("root", leaf.addr, link())
		opts := []hbnet.ClientOption{
			hbnet.WithDialer(nw.Host("root")),
			hbnet.WithClientClock(clk),
			hbnet.WithReconnectBackoff(20*time.Millisecond, 500*time.Millisecond),
		}
		if _, err := root.DialUpstream(fmt.Sprintf("leaf%d", li), leaf.addr, "merged", opts...); err != nil {
			return stats, err
		}
		if _, err := root.DialRollupUpstream(fmt.Sprintf("leaf%d", li), leaf.addr, "rollup", opts...); err != nil {
			return stats, err
		}
	}
	rootNode := &scaleNode{relay: root, addr: "root"}
	if err := newServer(rootNode); err != nil {
		return stats, err
	}
	if err := rootNode.srv.PublishRollup("apps", root.CompactedFeed()); err != nil {
		return stats, err
	}
	go root.Run(ctx)
	defer root.Close()
	defer rootNode.srv.Close()

	// The consumer: a raw subscription (latency histogram + conservation
	// tracker) and a compacted-rollup subscription (per-app ledger), both
	// over the simulated network.
	nw.SetLatency("mon", "root", link())
	dialOpts := func() []hbnet.ClientOption {
		return []hbnet.ClientOption{
			hbnet.WithDialer(nw.Host("mon")),
			hbnet.WithClientClock(clk),
			hbnet.WithReconnectBackoff(20*time.Millisecond, 500*time.Millisecond),
		}
	}
	var (
		consumerMu  sync.Mutex
		consumerErr error
	)
	setErr := func(err error) {
		consumerMu.Lock()
		if consumerErr == nil {
			consumerErr = err
		}
		consumerMu.Unlock()
	}
	tracker := &lockedTracker{tr: simcheck.NewTracker("scale consumer", 0)}
	histMu := sync.Mutex{}
	hist := loadgen.NewHist()

	raw, err := hbnet.Dial("root", "merged", dialOpts()...)
	if err != nil {
		return stats, err
	}
	defer raw.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			b, err := raw.Next(ctx)
			if err != nil {
				if ctx.Err() == nil && !errors.Is(err, io.EOF) {
					setErr(fmt.Errorf("raw subscription: %w", err))
				}
				return
			}
			now := clk.Now()
			histMu.Lock()
			for _, r := range b.Records {
				hist.ObserveDuration(now.Sub(r.Time))
			}
			histMu.Unlock()
			if aerr := tracker.absorb(b); aerr != nil {
				setErr(aerr)
				return
			}
		}
	}()

	var (
		rollupMu sync.Mutex
		rollups  simcheck.RollupAccount
		appSum   = map[string]uint64{}
	)
	rollupC, err := hbnet.DialRollup("root", "apps", dialOpts()...)
	if err != nil {
		return stats, err
	}
	defer rollupC.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			rb, err := rollupC.NextRollups(ctx)
			if err != nil {
				if ctx.Err() == nil && !errors.Is(err, io.EOF) {
					setErr(fmt.Errorf("rollup subscription: %w", err))
				}
				return
			}
			rollupMu.Lock()
			rollups.AbsorbRollups(rb.Rollups, rb.Missed)
			for _, r := range rb.Rollups {
				appSum[r.App] += r.Records + r.Missed
			}
			rollupMu.Unlock()
		}
	}()

	start := clk.Now()
	wg.Add(1)
	go func() { defer wg.Done(); fleet.Run(ctx) }()

	// Mid-run elastic churn: re-home app streams between leaves through the
	// cursor-preserving handoff path, spread across the run — membership
	// changes while the whole fleet beats, answered by the same
	// conservation verdict at the end.
	handoffs := sc.Handoffs
	if sc.Leaves < 2 {
		handoffs = 0
	}
	appLeaf := make([]int, fleet.Apps())
	for ai := range appLeaf {
		appLeaf[ai] = ai % sc.Leaves
	}
	for h := 0; h < handoffs; h++ {
		frac := float64(h+1) / float64(handoffs+1)
		if !sleepUntilVirtual(ctx, clk, start.Add(time.Duration(frac*float64(sc.Duration)))) {
			return stats, ctx.Err()
		}
		ai := rng.Intn(fleet.Apps())
		from, to := appLeaf[ai], (appLeaf[ai]+1)%sc.Leaves
		if err := hbnet.RebalanceStream(leaves[from].relay, leaves[to].relay, fleet.AppName(ai)); err != nil {
			return stats, fmt.Errorf("handoff %s leaf%d→leaf%d: %w", fleet.AppName(ai), from, to, err)
		}
		appLeaf[ai] = to
		stats.Handoffs++
	}

	// Run to the horizon, pause emission, then settle: wait (in real time,
	// while virtual time races on) until every hop agrees on a stable
	// total — consumer == root head == Σ leaf heads == fleet published —
	// and the compacted per-app ledger matches the fleet's per-app heads.
	if !sleepUntilVirtual(ctx, clk, start.Add(sc.Duration)) {
		return stats, ctx.Err()
	}
	fleet.Pause()
	deadline := time.Now().Add(settleDeadline) //hbvet:allow wallclock -- settle deadline is a real-time bound on the harness itself
	var lastTotal uint64
	stable := 0
	for {
		consumerMu.Lock()
		errNow := consumerErr
		consumerMu.Unlock()
		if errNow != nil {
			return stats, errNow
		}
		var consumerTotal uint64
		tracker.with(func(t *simcheck.Tracker) { consumerTotal = t.Delivered() + t.Missed() })
		rootHead := root.MergedHead()
		var leafSum uint64
		for _, leaf := range leaves {
			leafSum += leaf.relay.MergedHead()
		}
		fleetTotal := fleet.TotalPublished()
		rollupMu.Lock()
		rollupTotal := rollups.Records + rollups.Missed
		appsMatch := true
		for i := 0; i < fleet.Apps(); i++ {
			if appSum[fleet.AppName(i)] != fleet.AppHead(i) {
				appsMatch = false
				break
			}
		}
		rollupMu.Unlock()
		if consumerTotal == rootHead && rootHead == leafSum && leafSum == fleetTotal &&
			rollupTotal == rootHead && appsMatch && consumerTotal > 0 {
			if consumerTotal == lastTotal {
				stable++
				if stable >= 5 {
					break
				}
			} else {
				stable = 0
			}
			lastTotal = consumerTotal
		} else {
			stable = 0
		}
		if time.Now().After(deadline) { //hbvet:allow wallclock -- checks the harness real-time settle deadline set above
			return stats, fmt.Errorf("scale settle timed out: consumer=%d rootHead=%d leafSum=%d fleet=%d rollupTotal=%d appsMatch=%v",
				consumerTotal, rootHead, leafSum, fleetTotal, rollupTotal, appsMatch)
		}
		time.Sleep(2 * time.Millisecond) //hbvet:allow wallclock -- real-time sampling cadence while virtual time races between samples
	}

	// Verdict: conservation at every hop, then the scale budgets.
	stats.SimSeconds = clk.Elapsed(start).Seconds()
	var verdict error
	tracker.with(func(t *simcheck.Tracker) {
		stats.Delivered = t.Delivered()
		stats.Missed = t.Missed()
		if e := t.Err(); e != nil {
			verdict = e
			return
		}
		if e := t.CheckLives(1); e != nil {
			verdict = e
			return
		}
		if e := t.CheckConserved(root.MergedHead()); e != nil {
			verdict = e
		}
	})
	if verdict != nil {
		return stats, verdict
	}
	rollupMu.Lock()
	verdict = rollups.CheckConserved("compacted rollups", root.MergedHead())
	rollupMu.Unlock()
	if verdict != nil {
		return stats, verdict
	}
	if missed := root.RollupUpstreamMissed(); missed != 0 {
		return stats, fmt.Errorf("root lost %d rollup emissions from its leaves", missed)
	}
	// The O(apps) shape: the root's raw upstreams are its leaves and its
	// rollup state is one window per application — neither axis mentions
	// the producer count.
	stats.RootApps = len(root.Apps())
	stats.RootRollupApps = len(root.RollupApps())
	if stats.RootApps != sc.Leaves {
		return stats, fmt.Errorf("root tracks %d raw upstreams, want %d leaves", stats.RootApps, sc.Leaves)
	}
	if stats.RootRollupApps != fleet.Apps() {
		return stats, fmt.Errorf("root compacts %d applications, want %d", stats.RootRollupApps, fleet.Apps())
	}
	// The load shape actually happened: churn and silence bursts are part
	// of the scenario's claim, not decoration.
	stats.Left, stats.Rejoined = fleet.Churned()
	stats.Silenced = fleet.Silenced()
	if sc.ChurnFrac > 0 && int(sc.ChurnFrac*float64(sc.Producers)) > 0 {
		if stats.Left == 0 || stats.Rejoined == 0 {
			return stats, fmt.Errorf("churn unexercised: left=%d rejoined=%d", stats.Left, stats.Rejoined)
		}
	}
	if sc.Bursts > 0 && stats.Silenced == 0 {
		return stats, errors.New("silence bursts unexercised")
	}
	if handoffs > 0 && stats.Handoffs != handoffs {
		return stats, fmt.Errorf("handoff churn unexercised: %d of %d re-homes ran", stats.Handoffs, handoffs)
	}
	stats.Shed = root.Shed()
	for _, leaf := range leaves {
		stats.Shed += leaf.relay.Shed()
	}
	if err := simcheck.CheckShed("scale tree", stats.Shed, stats.Missed); err != nil {
		return stats, err
	}

	// The budgets, measured with the whole tier still live.
	histMu.Lock()
	stats.P50 = hist.QuantileDuration(0.50)
	stats.P95 = hist.QuantileDuration(0.95)
	stats.P99 = hist.QuantileDuration(0.99)
	histMu.Unlock()
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if m1.HeapAlloc > m0.HeapAlloc {
		stats.HeapBytes = m1.HeapAlloc - m0.HeapAlloc
	}
	stats.BytesPerProducer = float64(stats.HeapBytes) / float64(sc.Producers)
	stats.RealSeconds = time.Since(realStart).Seconds() //hbvet:allow wallclock -- closes the harness real-time budget opened above
	if err := simcheck.Ceiling("p99 delivery latency (virtual ms)",
		float64(stats.P99.Milliseconds()), float64(sc.P99Ceiling.Milliseconds())); err != nil {
		return stats, err
	}
	if err := simcheck.Ceiling("heap bytes per producer",
		stats.BytesPerProducer, sc.BytesPerProducerCeiling); err != nil {
		return stats, err
	}
	return stats, nil
}
