package scheduler

import (
	"fmt"
	"io"

	"repro/observer"
)

// Partitioner divides a fixed pool of cores among several heartbeat-
// enabled applications to keep each inside its own advertised target
// window — the paper's multi-application scenario (§1: resources
// "reallocated to provide the best global outcome", §2.4's organic OS).
// Like the single-application scheduler it observes nothing but
// heartbeats; each decision moves at most one core, taken from the idle
// pool, or from the application most above its window, and given to the
// application furthest below its own.
//
// Each application is consumed as an incremental stream: a Step reads
// only the records published since the previous Step, per application,
// instead of re-fetching every window every decision.
//
// Partitioner is not safe for concurrent use.
type Partitioner struct {
	total  int
	window int
	apps   []*partApp
}

type partApp struct {
	name   string
	stream observer.Stream
	// ownsStream marks a stream the partitioner derived from a Source in
	// Add (released by Close); AddStream streams belong to the caller.
	ownsStream bool
	win        *observer.Window
	eof        bool
	set        func(int) int
	cores      int
}

// AppStatus reports one application's state at a partitioning decision.
type AppStatus struct {
	Name      string
	Rate      float64
	RateOK    bool
	Cores     int
	TargetMin float64
	TargetMax float64
	// Need is the relative shortfall below the window minimum (> 0 when
	// starved), Surplus the relative excess above the maximum.
	Need, Surplus float64
}

// NewPartitioner creates a partitioner over a pool of total cores.
// window sets the rate-averaging window in beats (0: each source's
// default).
func NewPartitioner(total, window int) (*Partitioner, error) {
	if total < 1 {
		return nil, fmt.Errorf("scheduler: partitioner needs at least 1 core, got %d", total)
	}
	return &Partitioner{total: total, window: window}, nil
}

// Add registers an application: its heartbeat source and its core
// actuator (which must clamp and return the effective grant, e.g.
// (*sim.Proc).SetCores). The initial grant is applied immediately.
// Add fails if the pool cannot hold one core per registered application.
// The source is consumed as its natural stream (see observer.StreamOf);
// AddStream registers a Stream directly. The partitioner is Step-driven —
// Step drains every stream without blocking, so the derived stream's poll
// pacing is never waited on and no clock threading is needed (callers on
// a virtual clock call Step from their own clocked loop; contrast
// CoreScheduler.Run, which waits and therefore takes WithClock).
func (p *Partitioner) Add(name string, source observer.Source, set func(int) int, initial int) error {
	if source == nil {
		return fmt.Errorf("scheduler: nil source or actuator for %q", name)
	}
	stream := observer.StreamOf(source, 0)
	if err := p.AddStream(name, stream, set, initial); err != nil {
		// The derived stream may hold a live subscription; a failed
		// registration must not leak it.
		if c, ok := stream.(io.Closer); ok {
			c.Close()
		}
		return err
	}
	p.apps[len(p.apps)-1].ownsStream = true
	return nil
}

// AddStream is Add for an application already exposed as a Stream.
func (p *Partitioner) AddStream(name string, stream observer.Stream, set func(int) int, initial int) error {
	if stream == nil || set == nil {
		return fmt.Errorf("scheduler: nil source or actuator for %q", name)
	}
	if len(p.apps)+1 > p.total {
		return fmt.Errorf("scheduler: %d apps cannot share %d cores (1 core per app minimum)", len(p.apps)+1, p.total)
	}
	if initial < 1 {
		initial = 1
	}
	if used := p.used() + initial; used > p.total {
		initial = p.total - p.used()
	}
	a := &partApp{name: name, stream: stream, win: observer.NewWindow(p.window), set: set}
	a.cores = set(initial)
	p.apps = append(p.apps, a)
	return nil
}

// drain absorbs the application's pending batches without blocking.
func (a *partApp) drain() error {
	if a.eof {
		return nil
	}
	eof, err := observer.DrainInto(a.stream, a.win)
	if eof {
		a.eof = true
	}
	return err
}

func (p *Partitioner) used() int {
	used := 0
	for _, a := range p.apps {
		used += a.cores
	}
	return used
}

// Free returns the number of unallocated cores.
func (p *Partitioner) Free() int { return p.total - p.used() }

// Close releases the streams the partitioner derived from Sources in Add
// (in-process streams hold a subscription on the observed Heartbeat for as
// long as they live). Streams registered with AddStream are the caller's
// to close. Close the partitioner once no Step is active.
func (p *Partitioner) Close() error {
	var first error
	for _, a := range p.apps {
		if !a.ownsStream {
			continue
		}
		a.ownsStream = false
		if c, ok := a.stream.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Step performs one observe–decide–actuate cycle over all applications
// and returns their statuses after actuation.
func (p *Partitioner) Step() ([]AppStatus, error) {
	statuses := make([]AppStatus, len(p.apps))
	for i, a := range p.apps {
		if err := a.drain(); err != nil {
			return nil, fmt.Errorf("scheduler: observing %q: %w", a.name, err)
		}
		r, ok := a.win.RateOver(p.window)
		rate := r.PerSec
		targetMin, targetMax, targetSet := a.win.Target()
		st := AppStatus{
			Name: a.name, Rate: rate, RateOK: ok, Cores: a.cores,
			TargetMin: targetMin, TargetMax: targetMax,
		}
		if ok && targetSet {
			if rate < targetMin && targetMin > 0 {
				st.Need = (targetMin - rate) / targetMin
			}
			if rate > targetMax && targetMax > 0 {
				st.Surplus = (rate - targetMax) / targetMax
			}
		}
		statuses[i] = st
	}

	// Who is starving most, and who has the most headroom to give?
	needy, donor := -1, -1
	for i, st := range statuses {
		if st.Need > 0 && (needy == -1 || st.Need > statuses[needy].Need) {
			needy = i
		}
		if st.Surplus > 0 && statuses[i].Cores > 1 &&
			(donor == -1 || st.Surplus > statuses[donor].Surplus) {
			donor = i
		}
	}

	switch {
	case needy >= 0 && p.Free() > 0:
		// Grant from the idle pool first.
		p.grant(needy, statuses)
	case needy >= 0 && donor >= 0:
		// Rob the most-over app for the most-under one.
		p.revoke(donor, statuses)
		p.grant(needy, statuses)
	case needy < 0 && donor >= 0:
		// Nobody starves: release surplus back to the pool (the paper's
		// minimum-resource goal — reclaimed cores could be powered down
		// or given to non-heartbeat work).
		p.revoke(donor, statuses)
	}
	return statuses, nil
}

func (p *Partitioner) grant(i int, statuses []AppStatus) {
	a := p.apps[i]
	a.cores = a.set(a.cores + 1)
	statuses[i].Cores = a.cores
}

func (p *Partitioner) revoke(i int, statuses []AppStatus) {
	a := p.apps[i]
	if a.cores <= 1 {
		return
	}
	a.cores = a.set(a.cores - 1)
	statuses[i].Cores = a.cores
}
