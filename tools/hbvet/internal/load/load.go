// Package load type-checks this module's packages for hbvet without
// golang.org/x/tools: `go list -deps -export -json` names every package
// in dependency order and builds gc export data for the dependencies, so
// module packages can be parsed and checked from source while imports —
// stdlib and module alike — resolve instantly from export files.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one type-checked module package, in dependency order.
type Package struct {
	ImportPath string
	Dir        string
	// Requested is true when the package matched the load patterns itself
	// (rather than riding along as a dependency loaded for facts).
	Requested bool
	Files     []*ast.File
	Pkg       *types.Package
	Info      *types.Info
}

// Program is the loaded slice of the module.
type Program struct {
	Fset      *token.FileSet
	ModuleDir string
	// Packages holds the module's packages in dependency order: every
	// package appears after all of its module dependencies.
	Packages []*Package
}

// RelPath renders pos as a module-relative path (the form seam patterns
// and findings use); outside the module it falls back to the raw path.
func (p *Program) RelPath(pos token.Pos) string {
	file := p.Fset.Position(pos).Filename
	if rel, err := filepath.Rel(p.ModuleDir, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return file
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	ForTest    string
	Module     *struct {
		Path string
		Dir  string
	}
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %s: decoding: %v", strings.Join(args, " "), err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

const jsonFields = "-json=ImportPath,Dir,Export,GoFiles,Standard,ForTest,Module"

// Load lists patterns (plus all dependencies) from dir, type-checks every
// module package from source, and returns them in dependency order.
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	deps, err := goList(dir, append([]string{"-deps", "-export", jsonFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	requested, err := goList(dir, append([]string{jsonFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	want := make(map[string]bool, len(requested))
	for _, p := range requested {
		want[p.ImportPath] = true
	}

	exports := make(map[string]string)
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := NewExportImporter(fset, exports)

	prog := &Program{Fset: fset}
	checked := make(map[string]*types.Package)
	for _, p := range deps {
		if p.Standard || p.Module == nil || p.ForTest != "" {
			continue
		}
		if prog.ModuleDir == "" {
			prog.ModuleDir = p.Module.Dir
		}
		pkg, err := checkPackage(fset, imp, p)
		if err != nil {
			return nil, err
		}
		pkg.Requested = want[p.ImportPath]
		checked[p.ImportPath] = pkg.Pkg
		// Later module packages must see this package's *source-checked*
		// types, not its export data, so fact keys (types.Func.FullName)
		// and syntax stay coherent within one run.
		imp.override(p.ImportPath, pkg.Pkg)
		prog.Packages = append(prog.Packages, pkg)
	}
	if len(prog.Packages) == 0 {
		return nil, fmt.Errorf("no module packages matched %v", patterns)
	}
	return prog, nil
}

// checkPackage parses and type-checks one listed package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, p listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		file, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, file)
	}
	conf := types.Config{Importer: imp}
	info := NewInfo()
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	return &Package{ImportPath: p.ImportPath, Dir: p.Dir, Files: files, Pkg: tpkg, Info: info}, nil
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// ListExports maps the given import paths (plus all their dependencies)
// to gc export-data files via the go command, compiling them into the
// build cache as needed. The analysistest harness uses it to resolve a
// testdata package's stdlib and module imports.
func ListExports(paths []string) (map[string]string, error) {
	pkgs, err := goList("", append([]string{"-deps", "-export", jsonFields}, paths...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// ExportImporter resolves imports from gc export data files (as produced
// by `go list -export`), with per-path overrides for packages already
// type-checked from source.
type ExportImporter struct {
	gc        types.Importer
	overrides map[string]*types.Package
}

// NewExportImporter returns an importer over path -> export-file map.
func NewExportImporter(fset *token.FileSet, exports map[string]string) *ExportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return &ExportImporter{
		gc:        importer.ForCompiler(fset, "gc", lookup),
		overrides: make(map[string]*types.Package),
	}
}

// override makes future imports of path resolve to pkg.
func (e *ExportImporter) override(path string, pkg *types.Package) { e.overrides[path] = pkg }

// Import implements types.Importer.
func (e *ExportImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := e.overrides[path]; ok {
		return pkg, nil
	}
	return e.gc.Import(path)
}
