package experiments

import (
	"strings"
	"testing"
)

func TestDVFSSavesEnergyAtEqualPerformance(t *testing.T) {
	r := DVFS(Options{})
	rateGov := seriesCol(t, r, "rate_governed")
	freq := seriesCol(t, r, "freq_governed_x10")
	rateFixed := seriesCol(t, r, "rate_fixed")

	// The energy note must exist; TestDVFSSavingMagnitude checks the
	// saving quantitatively.
	found := false
	for _, n := range r.Notes {
		if strings.Contains(n, "% saved") {
			found = true
		}
	}
	if !found {
		t.Fatal("no energy note")
	}

	// Steady-state behaviour: half frequency in the light phases, full in
	// the heavy one, delivered rate paced identically to the fixed run.
	if f := freq[150] / 10; f != 0.5 {
		t.Errorf("light-phase frequency = %v, want 0.5", f)
	}
	if f := freq[300] / 10; f != 1.0 {
		t.Errorf("heavy-phase frequency = %v, want 1.0", f)
	}
	for _, i := range []int{150, 300, 550} {
		if rateGov[i] < 29 || rateGov[i] > 33 {
			t.Errorf("governed rate at beat %d = %.1f outside window", i+1, rateGov[i])
		}
		if rateFixed[i] < 29 || rateFixed[i] > 33 {
			t.Errorf("fixed rate at beat %d = %.1f outside window", i+1, rateFixed[i])
		}
	}
}

// Quantitative check of the saving, independent of note formatting.
func TestDVFSSavingMagnitude(t *testing.T) {
	r := DVFS(Options{})
	var savingNote string
	for _, n := range r.Notes {
		if strings.Contains(n, "saved") {
			savingNote = n
		}
	}
	// Expect a double-digit percentage saving on this workload.
	gotDouble := false
	for pct := 10; pct <= 60; pct++ {
		if strings.Contains(savingNote, itoa(pct)+"% saved") {
			gotDouble = true
			break
		}
	}
	if !gotDouble {
		t.Fatalf("expected a 10-60%% saving, note: %q", savingNote)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
