// Pins staticcheck for `make analyze` without adding it to the main
// module's dependency graph. On a networked machine, generate the
// matching sum file once with:
//
//	go mod tidy -modfile=tools/staticcheck.mod
//
// which writes tools/staticcheck.sum. Offline (as in the CI container,
// which has no module cache), `go run -modfile=tools/staticcheck.mod ...`
// fails to resolve the module; the analyze target probes for exactly that
// and skips the staticcheck step with a notice instead of failing ci.
module repro

go 1.22

require honnef.co/go/tools v0.5.1
