package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestCleanAfterGoroutineExits: a goroutine that finishes within the
// grace window is not a leak.
func TestCleanAfterGoroutineExits(t *testing.T) {
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond) //hbvet:allow wallclock -- leak-check self test exercises a real slow-to-unwind goroutine
		close(done)
	}()
	if leaked := Check(); len(leaked) != 0 {
		t.Fatalf("goroutine finishing inside the grace window reported as leak:\n%s",
			strings.Join(leaked, "\n\n"))
	}
	<-done
}

// TestDetectsParkedGoroutine: a goroutine blocked forever is reported,
// with its stack.
func TestDetectsParkedGoroutine(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out the full grace window")
	}
	block := make(chan struct{})
	gone := make(chan struct{})
	// Unblock the goroutine and wait for it to actually exit before the
	// test returns, so the deliberate leak cannot bleed into later tests'
	// goroutine dumps.
	defer func() { close(block); <-gone }()
	started := make(chan struct{})
	go func() {
		defer close(gone)
		close(started)
		<-block
	}()
	<-started
	leaked := Check()
	if len(leaked) == 0 {
		t.Fatal("parked goroutine not reported")
	}
	found := false
	for _, g := range leaked {
		if strings.Contains(g, "TestDetectsParkedGoroutine") {
			found = true
		}
	}
	if !found {
		t.Fatalf("leak report does not name the parked goroutine:\n%s", strings.Join(leaked, "\n\n"))
	}
}

// TestBenignFiltering: the dump of an idle test binary is entirely benign.
func TestBenignFiltering(t *testing.T) {
	if leaked := interesting(stacks()); len(leaked) != 0 {
		t.Fatalf("idle binary reports leaks:\n%s", strings.Join(leaked, "\n\n"))
	}
}
