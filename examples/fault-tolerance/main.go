// Fault tolerance (§5.4): the adaptive encoder never detects which core
// died — it only notices its heart rate sagging and sheds quality until
// the rate recovers. Any event that alters performance (core death, a
// failed fan forcing a voltage drop, a noisy neighbour) is handled by the
// same loop, which is the paper's point.
//
//	go run ./examples/fault-tolerance
package main

import (
	"fmt"
	"log"
	"time"

	"repro/control"
	"repro/heartbeat"
	"repro/internal/video"
	"repro/internal/x264"
	"repro/sim"
)

func main() {
	const (
		targetRate = 30.0
		frames     = 480
		checkEvery = 20
	)
	ladder := x264.Ladder()
	startLevel := len(ladder) - 2

	clk := sim.NewClock(time.Time{})
	machine := sim.NewMachine(clk, 8, 1.31e7)

	hb, err := heartbeat.New(20, heartbeat.WithClock(clk))
	if err != nil {
		log.Fatal(err)
	}
	hb.SetTarget(targetRate, 4*targetRate)

	// Cores die at these beats; the encoder is never told.
	injector := sim.NewFaultInjector(
		sim.FaultEvent{AtBeat: 120, FailCores: 1},
		sim.FaultEvent{AtBeat: 240, FailCores: 1},
		sim.FaultEvent{AtBeat: 360, FailCores: 1},
	)

	src := video.NewSource(160, 96, 3, video.Uniform(video.Complexity{Motion: 2.5, Detail: 14, Noise: 3}))
	enc := x264.NewEncoder(ladder[startLevel])
	policy := &control.Ladder{MaxLevel: len(ladder) - 1, TargetMin: targetRate}
	policy.SetLevel(startLevel)

	fmt.Printf("goal: >= %.0f beats/s; cores will fail at beats 120, 240, 360\n\n", targetRate)
	for beat := 1; beat <= frames; beat++ {
		if injector.Step(uint64(beat), machine) > 0 {
			fmt.Printf("beat %3d: *** a core died (machine now has %d healthy cores; the encoder is not told)\n",
				beat, machine.MaxCores())
		}
		frame, _ := src.Next()
		st, err := enc.Encode(frame)
		if err != nil {
			log.Fatal(err)
		}
		machine.Execute(sim.Work{Ops: st.Ops, ParallelFrac: x264.ParallelFrac})
		hb.Beat()

		if beat%checkEvery == 0 {
			rate, ok := hb.Rate(0)
			before := policy.Level()
			after := policy.Decide(rate, ok)
			note := ""
			if after != before {
				enc.SetConfig(ladder[after])
				note = fmt.Sprintf("  -> heart rate sagged; shedding quality to level %d (%v)", after, ladder[after])
			}
			fmt.Printf("beat %3d: %5.1f beats/s%s\n", beat, rate, note)
		}
	}
	rate, _ := hb.Rate(0)
	fmt.Printf("\nfinal: %.1f beats/s on %d of 8 cores — target held through 3 core failures\n",
		rate, machine.MaxCores())
}
