// Package compat mirrors the exact function shapes of Table 1 of the paper
// for readers porting code from the C reference implementation:
//
//	HB_initialize(window, local)      -> Initialize
//	HB_heartbeat(tag, local)          -> Heartbeat
//	HB_current_rate(window, local)    -> CurrentRate
//	HB_set_target_rate(min, max, ...) -> SetTargetRate
//	HB_get_target_min(local)          -> GetTargetMin
//	HB_get_target_max(local)          -> GetTargetMax
//	HB_get_history(n, local)          -> GetHistory
//
// The C API distinguishes per-thread ("local") from per-application
// ("global") heartbeats with a boolean, relying on the OS thread identity of
// the caller. Go deliberately hides thread identity, so this package keeps
// the boolean but resolves "the current thread" to a handle registered with
// RegisterThread from the worker goroutine. Idiomatic Go code should prefer
// package heartbeat directly.
package compat

import (
	"fmt"
	"sync"

	"repro/heartbeat"
)

// HB is a heartbeat instance created by Initialize. The zero value is
// invalid.
type HB struct {
	app *heartbeat.Heartbeat

	mu      sync.Mutex
	threads map[int64]*compatThread
	nextKey int64
}

// compatThread serializes beats on one registered thread. The C API lets
// any OS thread issue HB_heartbeat for any tid, so — unlike idiomatic users
// of heartbeat.Thread, which is single-producer for speed — the compat
// layer keeps the seed's anything-goes concurrency by taking a per-thread
// mutex around local beats.
type compatThread struct {
	mu sync.Mutex
	t  *heartbeat.Thread
}

// Initialize creates a heartbeat instance whose default window is window
// beats (HB_initialize). The local parameter of the C API selects whether
// per-thread buffers will be used; here per-thread buffers are always
// available once RegisterThread is called, so local is accepted for source
// compatibility and otherwise ignored.
func Initialize(window int, local bool, opts ...heartbeat.Option) (*HB, error) {
	_ = local
	app, err := heartbeat.New(window, opts...)
	if err != nil {
		return nil, err
	}
	return &HB{app: app, threads: make(map[int64]*compatThread)}, nil
}

// App exposes the underlying heartbeat.Heartbeat.
func (hb *HB) App() *heartbeat.Heartbeat { return hb.app }

// RegisterThread registers the calling goroutine as a thread and returns its
// key, to be passed as the tid argument of the local-flavored calls. The C
// API derives this implicitly from the caller's thread ID; Go requires it to
// be explicit.
func (hb *HB) RegisterThread(name string) int64 {
	hb.mu.Lock()
	defer hb.mu.Unlock()
	hb.nextKey++
	hb.threads[hb.nextKey] = &compatThread{t: hb.app.Thread(name)}
	return hb.nextKey
}

func (hb *HB) thread(tid int64) (*compatThread, error) {
	hb.mu.Lock()
	defer hb.mu.Unlock()
	t, ok := hb.threads[tid]
	if !ok {
		return nil, fmt.Errorf("compat: unknown thread key %d", tid)
	}
	return t, nil
}

// Heartbeat registers a heartbeat (HB_heartbeat). With local == false the
// beat lands in the application's global history and tid is ignored; with
// local == true it lands in the private history of the thread registered
// under tid.
func (hb *HB) Heartbeat(tag int64, local bool, tid int64) error {
	if !local {
		hb.app.BeatTag(tag)
		return nil
	}
	t, err := hb.thread(tid)
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.t.BeatTag(tag)
	t.mu.Unlock()
	return nil
}

// CurrentRate returns the average heart rate over the last window beats
// (HB_current_rate); window == 0 uses the default window. It returns 0
// before two beats are available, as the C reference does.
func (hb *HB) CurrentRate(window int, local bool, tid int64) (float64, error) {
	if !local {
		r, _ := hb.app.Rate(window)
		return r, nil
	}
	t, err := hb.thread(tid)
	if err != nil {
		return 0, err
	}
	r, _ := t.t.Rate(window)
	return r, nil
}

// SetTargetRate advertises the application's target heart-rate range
// (HB_set_target_rate). Targets are global in the reference implementation;
// local is accepted for source compatibility.
func (hb *HB) SetTargetRate(min, max float64, local bool) error {
	_ = local
	return hb.app.SetTarget(min, max)
}

// GetTargetMin returns the advertised minimum target rate
// (HB_get_target_min), or 0 when no target has been set.
func (hb *HB) GetTargetMin(local bool) float64 {
	_ = local
	min, _, _ := hb.app.Target()
	return min
}

// GetTargetMax returns the advertised maximum target rate
// (HB_get_target_max), or 0 when no target has been set.
func (hb *HB) GetTargetMax(local bool) float64 {
	_ = local
	_, max, _ := hb.app.Target()
	return max
}

// GetHistory returns the last n heartbeats, oldest first (HB_get_history).
func (hb *HB) GetHistory(n int, local bool, tid int64) ([]heartbeat.Record, error) {
	if !local {
		return hb.app.History(n), nil
	}
	t, err := hb.thread(tid)
	if err != nil {
		return nil, err
	}
	return t.t.History(n), nil
}
