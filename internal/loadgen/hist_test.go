package loadgen

import (
	"math/rand"
	"sort"
	"testing"
	"time"
)

// refQuantile is the sorted-reference definition Quantile approximates:
// the ceil(q*n)-th smallest sample.
func refQuantile(sorted []int64, q float64) int64 {
	rank := int(q * float64(len(sorted)))
	if float64(rank) < q*float64(len(sorted)) {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

var quantiles = []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}

// TestHistEdges: the zero-sample and single-sample table.
func TestHistEdges(t *testing.T) {
	cases := []struct {
		name    string
		samples []int64
		q       float64
		want    int64
	}{
		{"empty p50", nil, 0.5, 0},
		{"empty p100", nil, 1.0, 0},
		{"single p1", []int64{37}, 0.01, 37},
		{"single p50", []int64{37}, 0.5, 37},
		{"single p100", []int64{37}, 1.0, 37},
		{"single zero", []int64{0}, 0.5, 0},
		{"negative clamps", []int64{-5}, 1.0, 0},
		{"two p50", []int64{10, 20}, 0.5, 10},
		{"two p51", []int64{10, 20}, 0.51, 20},
		{"q clamps low", []int64{10, 20}, -1, 10},
		{"q clamps high", []int64{10, 20}, 7, 20},
	}
	for _, tc := range cases {
		h := NewHistPrecision(10)
		for _, v := range tc.samples {
			h.Observe(v)
		}
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%g) = %d, want %d", tc.name, tc.q, got, tc.want)
		}
		if got := h.Count(); got != uint64(len(tc.samples)) {
			t.Errorf("%s: Count = %d, want %d", tc.name, got, len(tc.samples))
		}
	}
}

// TestHistExactSmallRange: values inside the linear range (below 2^sub)
// land in single-value buckets, so every quantile must equal the sorted
// reference exactly, on random workloads.
func TestHistExactSmallRange(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5000)
		h := NewHistPrecision(10) // exact below 1024
		samples := make([]int64, n)
		for i := range samples {
			samples[i] = int64(rng.Intn(1024))
			h.Observe(samples[i])
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range quantiles {
			if got, want := h.Quantile(q), refQuantile(samples, q); got != want {
				t.Fatalf("seed %d n %d: Quantile(%g) = %d, want exact %d", seed, n, q, got, want)
			}
		}
	}
}

// TestHistRelativeError: across a wide dynamic range the estimate must
// bracket the reference from above within the advertised relative error —
// never understate a latency.
func TestHistRelativeError(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := NewHist()
		n := 20_000
		samples := make([]int64, n)
		for i := range samples {
			// Log-uniform over ~9 decades, like latencies spanning ns..s.
			samples[i] = int64(1) << uint(rng.Intn(30))
			samples[i] += rng.Int63n(samples[i] + 1)
			h.Observe(samples[i])
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		for _, q := range quantiles {
			got, want := h.Quantile(q), refQuantile(samples, q)
			if got < want {
				t.Fatalf("seed %d: Quantile(%g) = %d understates reference %d", seed, q, got, want)
			}
			if maxAbs := float64(want) * (1 + h.RelErr()); float64(got) > maxAbs {
				t.Fatalf("seed %d: Quantile(%g) = %d exceeds reference %d by more than relErr %.3f",
					seed, q, got, want, h.RelErr())
			}
		}
	}
}

// TestHistMergeAssociativity: merge is integer addition, so (a+b)+c and
// a+(b+c) must agree bucket-for-bucket — shard-and-combine is exact.
func TestHistMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	mk := func() *Hist {
		h := NewHist()
		for i, n := 0, 1000+rng.Intn(2000); i < n; i++ {
			h.Observe(rng.Int63n(1 << 40))
		}
		return h
	}
	a, b, c := mk(), mk(), mk()
	left := NewHist() // (a+b)+c
	for _, h := range []*Hist{a, b, c} {
		if err := left.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	bc := NewHist()
	for _, h := range []*Hist{b, c} {
		if err := bc.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	right := NewHist() // a+(b+c)
	for _, h := range []*Hist{a, bc} {
		if err := right.Merge(h); err != nil {
			t.Fatal(err)
		}
	}
	if left.Count() != right.Count() || left.Count() != a.Count()+b.Count()+c.Count() {
		t.Fatalf("counts: left %d right %d parts %d", left.Count(), right.Count(), a.Count()+b.Count()+c.Count())
	}
	for i := range left.counts {
		if left.counts[i] != right.counts[i] {
			t.Fatalf("bucket %d: %d vs %d", i, left.counts[i], right.counts[i])
		}
	}
	for _, q := range quantiles {
		if left.Quantile(q) != right.Quantile(q) {
			t.Fatalf("Quantile(%g): %d vs %d", q, left.Quantile(q), right.Quantile(q))
		}
	}
}

// TestHistMergePrecisionMismatch: merging incompatible bucketings must be
// refused, not silently mangled.
func TestHistMergePrecisionMismatch(t *testing.T) {
	if err := NewHistPrecision(7).Merge(NewHistPrecision(8)); err == nil {
		t.Fatal("merge across precisions succeeded")
	}
}

// TestHistDuration: the Duration wrappers round-trip nanoseconds.
func TestHistDuration(t *testing.T) {
	h := NewHistPrecision(12)
	h.ObserveDuration(1500 * time.Nanosecond)
	if got := h.QuantileDuration(1.0); got != 1500*time.Nanosecond {
		t.Fatalf("QuantileDuration = %v, want 1.5µs", got)
	}
}
