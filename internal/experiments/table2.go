package experiments

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"repro/hbfile"
	"repro/heartbeat"
	"repro/internal/parsec"
	"repro/internal/plot"
	"repro/sim"
)

// refCoreRate is the per-core op rate of the simulated reference machine.
const refCoreRate = 1e9

// Table2 reproduces Table 2: the average heart rate of each instrumented
// PARSEC benchmark running its native input on the eight-core reference
// platform. Per-beat costs are calibrated from the paper's measured rates
// (see parsec.Profile.OpsPerBeat); the experiment then validates that the
// whole pipeline — work execution, heartbeat registration, windowed rate
// measurement — reports those rates back through the Heartbeats API.
func Table2(opt Options) Result {
	table := &plot.Table{
		Title:  "Table 2: Heartbeats in the PARSEC Benchmark Suite (simulated 8-core reference machine)",
		Header: []string{"Benchmark", "Heartbeat Location", "Paper beats/s", "Measured beats/s", "Rel err"},
	}
	notes := []string{}
	worst := 0.0
	for _, p := range parsec.Profiles() {
		clk := sim.NewClock(sim.Epoch)
		m := sim.NewMachine(clk, 8, refCoreRate)
		hb, err := heartbeat.New(20, heartbeat.WithClock(clk), heartbeat.WithCapacity(p.Beats+1))
		if err != nil {
			panic(err)
		}
		start := clk.Now()
		for b := 0; b < p.Beats; b++ {
			m.Execute(p.Work(refCoreRate, 8))
			hb.Beat()
		}
		// Whole-run average, as the paper reports.
		measured := float64(p.Beats) / clk.Elapsed(start).Seconds()
		rel := (measured - p.PaperRate) / p.PaperRate
		if rel < 0 {
			rel = -rel
		}
		if rel > worst {
			worst = rel
		}
		table.Rows = append(table.Rows, []string{
			p.Name, p.BeatLabel,
			fmt.Sprintf("%.2f", p.PaperRate),
			fmt.Sprintf("%.2f", measured),
			fmt.Sprintf("%.2f%%", rel*100),
		})
	}
	notes = append(notes,
		fmt.Sprintf("worst relative error across 10 benchmarks: %.3f%%", worst*100),
		"rate spread spans ~52000x (streamcluster 0.02/s to canneal 1043.76/s), as in the paper")
	return Result{ID: "table2", Title: table.Title, Table: table, Notes: notes}
}

// Overhead reproduces the §5.1 instrumentation-overhead findings with real
// computation and the file-backed reference-style heartbeat sink:
//
//   - blackscholes with a heartbeat per option slows down by an order of
//     magnitude, because the heartbeat file write dwarfs one option's work;
//   - a heartbeat every 25000 options has negligible overhead;
//   - facesim (a heartbeat per frame, frames are expensive) stays under 5%.
func Overhead(opt Options) Result {
	units := opt.overheadUnits()
	dir, err := os.MkdirTemp("", "hb-overhead")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)

	bs := parsec.NewBlackscholes()
	base := timeKernel(bs, units, 0, "")
	perOption := timeKernel(bs, units, 1, filepath.Join(dir, "bs1.hb"))
	per25000 := timeKernel(bs, units, 25000, filepath.Join(dir, "bs25000.hb"))

	fsFrames := 200
	fs := parsec.NewFacesim()
	fsBase := timeKernel(fs, fsFrames, 0, "")
	fsBeat := timeKernel(fs, fsFrames, 1, filepath.Join(dir, "fs.hb"))

	row := func(name string, beatEvery string, base, with time.Duration) []string {
		return []string{name, beatEvery,
			fmt.Sprintf("%.1fms", float64(base.Microseconds())/1000),
			fmt.Sprintf("%.1fms", float64(with.Microseconds())/1000),
			fmt.Sprintf("%.2fx", float64(with)/float64(base))}
	}
	table := &plot.Table{
		Title:  "Instrumentation overhead (§5.1), file-backed heartbeats, real kernels",
		Header: []string{"Benchmark", "Heartbeat", "Uninstrumented", "Instrumented", "Slowdown"},
		Rows: [][]string{
			row("blackscholes", "every option", base, perOption),
			row("blackscholes", "every 25000 options", base, per25000),
			row("facesim", "every frame", fsBase, fsBeat),
		},
	}
	notes := []string{
		fmt.Sprintf("blackscholes per-option slowdown: %.1fx (paper: order-of-magnitude)", float64(perOption)/float64(base)),
		fmt.Sprintf("blackscholes per-25000 slowdown: %.3fx (paper: negligible)", float64(per25000)/float64(base)),
		fmt.Sprintf("facesim per-frame slowdown: %.3fx (paper: <5%%)", float64(fsBeat)/float64(fsBase)),
	}
	return Result{ID: "overhead", Title: table.Title, Table: table, Notes: notes}
}

// timeKernel times units of real kernel work, beating every beatEvery
// units into a file-backed heartbeat (0 = uninstrumented). It returns the
// minimum of three runs — wall-clock measurements on a shared host are
// noisy upward, and the minimum is the standard robust estimator.
func timeKernel(k parsec.Kernel, units, beatEvery int, path string) time.Duration {
	best := timeKernelOnce(k, units, beatEvery, path)
	for i := 0; i < 2; i++ {
		if d := timeKernelOnce(k, units, beatEvery, path); d < best {
			best = d
		}
	}
	return best
}

func timeKernelOnce(k parsec.Kernel, units, beatEvery int, path string) time.Duration {
	var hb *heartbeat.Heartbeat
	if beatEvery > 0 {
		w, err := hbfile.Create(path, 20, 1<<12)
		if err != nil {
			panic(err)
		}
		hb, err = heartbeat.New(20, heartbeat.WithSink(w))
		if err != nil {
			panic(err)
		}
		defer hb.Close()
	}
	rng := rand.New(rand.NewSource(12345))
	var sink uint64
	start := time.Now() //hbvet:allow wallclock -- the experiment measures real runtime; virtual time would measure nothing
	for i := 1; i <= units; i++ {
		cs, _ := k.DoUnit(rng)
		sink ^= cs
		if beatEvery > 0 && i%beatEvery == 0 {
			hb.Beat()
		}
	}
	elapsed := time.Since(start) //hbvet:allow wallclock -- closes the real-runtime measurement opened above
	if sink == 42 {              // defeat dead-code elimination without output noise
		fmt.Fprintln(os.Stderr, "improbable checksum")
	}
	return elapsed
}
