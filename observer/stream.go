package observer

import (
	"context"
	"errors"
	"io"
	"sync"
	"time"

	"repro/hbfile"
	"repro/heartbeat"
)

// DefaultPollInterval paces the cursor checks of streams that observe a
// medium with no wake-up channel (files written by another process, foreign
// Sources). Each check is a single tiny read — the cursor — never a window
// re-decode, so the interval trades only detection latency, not per-tick
// work.
const DefaultPollInterval = 20 * time.Millisecond

// Batch is one increment of an application's heartbeat stream: the records
// published since the previous batch plus the current advertised state.
type Batch struct {
	// Records holds the new records, oldest to newest. It is never
	// re-delivered data: across the life of a Stream each record is
	// returned at most once.
	Records []heartbeat.Record
	// Count is the total number of heartbeats registered so far.
	Count uint64
	// Window is the application's default averaging window.
	Window int
	// TargetMin and TargetMax are the advertised goal; valid when
	// TargetSet.
	TargetMin, TargetMax float64
	TargetSet            bool
	// Missed counts records that were published since the previous batch
	// but overwritten before this consumer could read them (a consumer
	// outrun by the producer's ring). 0 in healthy operation.
	Missed uint64
}

// Stream is the primary consumer-side abstraction: an incremental,
// cursor-based view of one application's heartbeats. Next blocks until new
// records are published and returns them as a Batch — so an idle
// application costs its observers no per-record work at all, where the old
// Snapshot polling re-read and re-decoded the whole window every tick.
//
// Contract: when records are already pending, Next returns them
// immediately even if ctx is already cancelled; cancellation is only
// reported once there is nothing to deliver. This makes a Next with an
// expired context a non-blocking drain, which is how deterministic loops
// (Hub.Step, scheduler.CoreScheduler.Step) consume streams. Next returns
// io.EOF when the producer has closed the stream and every record has been
// delivered.
//
// A Stream is a single-consumer cursor: calls to Next must not overlap.
// Open one stream per consumer — they are cheap, and each keeps its own
// position.
type Stream interface {
	Next(ctx context.Context) (Batch, error)
}

// noWaitCtx is an already-cancelled context: by the Stream contract,
// Next(noWaitCtx) returns pending data immediately and context.Canceled
// when idle — a non-blocking drain.
var noWaitCtx = func() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}()

// DrainInto absorbs every already-published batch of s into w without
// blocking. eof reports that the stream ended (the producer closed); the
// window keeps its final state and further drains are pointless. This is
// the one drain loop shared by every deterministic consumer (Hub.Step,
// scheduler.CoreScheduler.Step, scheduler.Partitioner.Step).
func DrainInto(s Stream, w *Window) (eof bool, err error) {
	for {
		b, nerr := s.Next(noWaitCtx)
		if nerr == nil {
			w.Absorb(b)
			continue
		}
		switch {
		case errors.Is(nerr, io.EOF):
			return true, nil
		case errors.Is(nerr, context.Canceled):
			return false, nil // nothing pending: the non-blocking drain is done
		default:
			return false, nerr
		}
	}
}

// CollectInto absorbs batches of s into w until deadline (eof false, err
// nil — a normal idle tick), stream end (eof true), ctx cancellation
// (err = ctx.Err()), or a stream failure. This is the one
// deadline-bounded collect loop shared by the wall-clock consumers
// (Monitor.Run, scheduler.CoreScheduler.Run, hbmon -follow).
func CollectInto(ctx context.Context, s Stream, w *Window, deadline time.Time) (eof bool, err error) {
	return CollectIntoClock(ctx, s, w, deadline, nil)
}

// CollectIntoClock is CollectInto on an explicit clock: the deadline is
// interpreted (and waited out) on clk's time, so a virtual clock makes the
// collect interval a simulation event instead of a host sleep. A nil clk
// (or any clock without scheduling) is the wall clock.
func CollectIntoClock(ctx context.Context, s Stream, w *Window, deadline time.Time, clk heartbeat.Clock) (eof bool, err error) {
	dctx, cancel := heartbeat.ContextWithTimeout(ctx, clk, deadline.Sub(clockNow(clk)))
	defer cancel()
	for {
		b, nerr := s.Next(dctx)
		if nerr == nil {
			w.Absorb(b)
			// Check the clock, not just dctx: a producer fast enough to
			// have records pending on every Next would otherwise keep this
			// loop absorbing forever (pending data wins over an expired
			// context by the Stream contract) and starve the caller's
			// judgment tick.
			if !clockNow(clk).Before(deadline) {
				return false, nil
			}
			continue
		}
		switch {
		case errors.Is(nerr, io.EOF):
			return true, nil
		case ctx.Err() != nil:
			return false, ctx.Err()
		case errors.Is(nerr, context.DeadlineExceeded) && dctx.Err() != nil:
			return false, nil // the interval elapsed: a normal idle tick
		default:
			return false, nerr
		}
	}
}

// clockNow is heartbeat.Now under the package's local name.
func clockNow(clk heartbeat.Clock) time.Time { return heartbeat.Now(clk) }

// HeartbeatStream streams an in-process *heartbeat.Heartbeat: the
// self-observation path of Figure 1(a), now push-based. A blocked Next
// wakes when a flush publishes records — there is no polling. The first
// batch delivers the retained history, so a late-attaching observer still
// sees the recent past.
func HeartbeatStream(hb *heartbeat.Heartbeat) Stream {
	return &heartbeatStream{hb: hb, sub: hb.Subscribe(context.Background())}
}

// HeartbeatStreamFrom is HeartbeatStream resuming after global sequence
// number since: the first batch delivers only records newer than since,
// with records published-but-lapped beyond the cursor counted as Missed —
// exactly a local subscription resumed via SubscribeFrom. This is the
// resume point remote fan-out (package hbnet) replays reconnecting
// subscribers from.
func HeartbeatStreamFrom(hb *heartbeat.Heartbeat, since uint64) Stream {
	return &heartbeatStream{hb: hb, sub: hb.SubscribeFrom(context.Background(), since)}
}

type heartbeatStream struct {
	hb         *heartbeat.Heartbeat
	sub        *heartbeat.Subscription
	lastMissed uint64

	// free is the recycled record slice (Recycle): a consumer that hands
	// each batch back once done — the hbnet server does, after encoding —
	// makes the poll loop reuse one backing array instead of allocating
	// per delivery. Guarded by freeMu: Next is single-consumer, but
	// Recycle may be called from the goroutine that drained the batch.
	freeMu sync.Mutex
	free   []heartbeat.Record
}

func (s *heartbeatStream) Next(ctx context.Context) (Batch, error) {
	s.freeMu.Lock()
	buf := s.free
	s.free = nil
	s.freeMu.Unlock()
	recs, err := s.sub.NextInto(ctx, buf)
	if err != nil {
		if errors.Is(err, heartbeat.ErrClosed) {
			return Batch{}, io.EOF
		}
		return Batch{}, err
	}
	b := Batch{Records: recs, Count: s.hb.Count(), Window: s.hb.Window()}
	b.TargetMin, b.TargetMax, b.TargetSet = s.hb.Target()
	m := s.sub.Missed()
	b.Missed = m - s.lastMissed
	s.lastMissed = m
	return b, nil
}

// Recycle hands a delivered batch's record slice back for reuse by the
// next Next (the BatchRecycler hook). Only call it when the batch's
// records are completely consumed — the next delivery overwrites them.
func (s *heartbeatStream) Recycle(b Batch) {
	if cap(b.Records) == 0 {
		return
	}
	s.freeMu.Lock()
	if s.free == nil {
		s.free = b.Records[:0]
	}
	s.freeMu.Unlock()
}

// Close releases the underlying subscription. The Stream interface does
// not require Close; it exists for consumers that outlive their interest
// in the heartbeat.
func (s *heartbeatStream) Close() error {
	s.sub.Close()
	return nil
}

// FileStream streams a heartbeat ring file written by another process: the
// external-observation path of Figure 1(b), incrementally. Idle ticks cost
// one 8-byte cursor read every poll interval (poll <= 0 selects
// DefaultPollInterval); new records are read and decoded exactly once.
func FileStream(r *hbfile.Reader, poll time.Duration) Stream {
	return FileStreamFrom(r, poll, 0)
}

// FileStreamFrom is FileStream with the cursor pre-positioned after
// sequence number since — records at or before since are never delivered,
// and records published beyond since but already overwritten count as
// Missed. It is how a disconnected consumer of a ring file resumes without
// re-reading (or double-counting) what it already saw.
func FileStreamFrom(r *hbfile.Reader, poll time.Duration, since uint64) Stream {
	return newRingFileStream(r, poll, since)
}

// FileStreamClock is FileStreamFrom on an explicit clock: poll waits run
// on clk's time (virtual for a sim clock), so an idle tail is a
// simulation event instead of a host sleep. A nil clk is the wall clock.
func FileStreamClock(r *hbfile.Reader, poll time.Duration, since uint64, clk heartbeat.Clock) Stream {
	s := newRingFileStream(r, poll, since)
	s.clk = clk
	return s
}

// newRingFileStream is the one place the ring-file cursor loop is wired
// up (FileStreamFrom and followStream.open share it).
func newRingFileStream(r *hbfile.Reader, poll time.Duration, since uint64) *fileStream {
	if poll <= 0 {
		poll = DefaultPollInterval
	}
	return &fileStream{read: r.ReadSince, window: r.Window, target: r.Target, poll: poll, cursor: since}
}

// LogStream streams an append-only heartbeat log (hbfile.LogReader),
// tailing appended records without ever re-reading delivered ones. Large
// backlogs are paged in bounded batches; poll <= 0 selects
// DefaultPollInterval.
func LogStream(r *hbfile.LogReader, poll time.Duration) Stream {
	return LogStreamFrom(r, poll, 0)
}

// LogStreamFrom is LogStream resuming after sequence number since (see
// FileStreamFrom).
func LogStreamFrom(r *hbfile.LogReader, poll time.Duration, since uint64) Stream {
	return newLogFileStream(r, poll, since)
}

// LogStreamClock is LogStreamFrom on an explicit clock (see
// FileStreamClock).
func LogStreamClock(r *hbfile.LogReader, poll time.Duration, since uint64, clk heartbeat.Clock) Stream {
	s := newLogFileStream(r, poll, since)
	s.clk = clk
	return s
}

// newLogFileStream is newRingFileStream's append-only-log counterpart;
// the max bound pages large backlogs in batches.
func newLogFileStream(r *hbfile.LogReader, poll time.Duration, since uint64) *fileStream {
	if poll <= 0 {
		poll = DefaultPollInterval
	}
	return &fileStream{read: r.ReadSince, window: r.Window, target: r.Target, poll: poll, max: 65536, cursor: since}
}

// fileStream is the shared cursor loop over either hbfile reader variant.
type fileStream struct {
	read   func(since uint64, max int) ([]heartbeat.Record, uint64, error)
	window func() int
	target func() (min, max float64, ok bool, err error)
	poll   time.Duration
	max    int
	cursor uint64
	clk    heartbeat.Clock // nil = wall clock; paces the idle-tick waits
}

func (s *fileStream) Next(ctx context.Context) (Batch, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		b, ok, err := s.step()
		if err != nil {
			return Batch{}, err
		}
		if ok {
			return b, nil
		}
		select {
		case <-ctx.Done():
			return Batch{}, ctx.Err()
		case <-heartbeat.After(s.clk, s.poll):
		}
	}
}

// step performs one non-blocking cursor check: (batch, true, nil) when new
// records (or a detected loss) advanced the cursor, (zero, false, nil) on
// an idle tick. followStream interleaves these checks with recreation
// stats, which is why the step is separate from the waiting loop.
func (s *fileStream) step() (Batch, bool, error) {
	for {
		recs, cur, err := s.read(s.cursor, s.max)
		if err != nil {
			return Batch{}, false, err
		}
		if cur < s.cursor {
			// The file's head is behind the cursor: the file was
			// recreated by a restarted producer (or the cursor came from
			// another life of it, the FileStreamFrom resume case).
			// Resynchronize from the beginning — parity with the
			// in-process Subscription resync — rather than silently
			// skipping the new life's records until it passes the old
			// cursor. The records between the two lives are unknowable,
			// so they are not counted as Missed.
			s.cursor = 0
			continue
		}
		if cur == s.cursor {
			return Batch{}, false, nil
		}
		// Read the target before advancing the cursor: an error here
		// must leave the cursor in place so the retry re-delivers the
		// records instead of silently dropping them.
		min, max, ok, terr := s.target()
		if terr != nil {
			return Batch{}, false, terr
		}
		b := Batch{Records: recs, Count: cur, Window: s.window(),
			TargetMin: min, TargetMax: max, TargetSet: ok}
		if d := cur - s.cursor; d > uint64(len(recs)) {
			b.Missed = d - uint64(len(recs))
		}
		s.cursor = cur
		return b, true, nil
	}
}

// PollStream adapts any Source to the Stream interface by polling
// snapshots and forwarding only records newer than the cursor. It is the
// compatibility fallback: each check still pays the source's full snapshot
// cost, so native streams (HeartbeatStream, FileStream, LogStream) are
// preferred wherever they apply — StreamOf picks them automatically.
// poll <= 0 selects DefaultPollInterval.
func PollStream(src Source, poll time.Duration) Stream {
	return PollStreamClock(src, poll, nil)
}

// PollStreamClock is PollStream on an explicit clock (see FileStreamClock);
// a nil clk is the wall clock.
func PollStreamClock(src Source, poll time.Duration, clk heartbeat.Clock) Stream {
	if poll <= 0 {
		poll = DefaultPollInterval
	}
	return &pollStream{src: src, poll: poll, clk: clk}
}

type pollStream struct {
	src    Source
	poll   time.Duration
	cursor uint64
	clk    heartbeat.Clock // nil = wall clock
}

func (s *pollStream) Next(ctx context.Context) (Batch, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for {
		snap, err := s.src.Snapshot(0)
		if err != nil {
			return Batch{}, err
		}
		recs := snap.Records
		var fresh []heartbeat.Record
		if n := len(recs); n > 0 && recs[n-1].Seq == 0 {
			// The source does not populate Seq (nothing in the snapshot
			// API forced it to): fall back to count-based dedup so the
			// stream still progresses instead of silently delivering
			// nothing forever. Count regressions resynchronize.
			if snap.Count < s.cursor {
				s.cursor = 0
			}
			if snap.Count > s.cursor {
				k := snap.Count - s.cursor
				if k > uint64(n) {
					k = uint64(n)
				}
				fresh = recs[n-int(k):]
				s.cursor = snap.Count
			}
		} else {
			if n := len(recs); n > 0 && recs[n-1].Seq < s.cursor {
				// Sequence numbers regressed: the observed history was
				// recreated (application restart). Resynchronize rather
				// than silence the stream forever.
				s.cursor = 0
			}
			i := len(recs)
			for i > 0 && recs[i-1].Seq > s.cursor {
				i--
			}
			fresh = recs[i:]
			if len(fresh) > 0 {
				s.cursor = fresh[len(fresh)-1].Seq
			}
		}
		if len(fresh) > 0 {
			return Batch{
				Records:   fresh,
				Count:     snap.Count,
				Window:    snap.Window,
				TargetMin: snap.TargetMin,
				TargetMax: snap.TargetMax,
				TargetSet: snap.TargetSet,
			}, nil
		}
		select {
		case <-ctx.Done():
			return Batch{}, ctx.Err()
		case <-heartbeat.After(s.clk, s.poll):
		}
	}
}

// StreamOf converts a Source to its natural Stream: the built-in sources
// map to their native incremental streams (in-process subscription, file
// cursor tail), and anything else falls back to snapshot polling through
// PollStream. poll paces the fallback and the file cursors; poll <= 0
// selects DefaultPollInterval. This is the migration path for code holding
// a Source from the pre-stream API.
func StreamOf(src Source, poll time.Duration) Stream {
	return StreamOfClock(src, poll, nil)
}

// StreamOfClock is StreamOf on an explicit clock: the derived stream's
// poll waits run on clk, so the Source-compat path participates in
// virtual time like the native streams (Hub.AddSource, Monitor.Run, and
// scheduler.New thread their own clocks through here). A nil clk is the
// wall clock.
func StreamOfClock(src Source, poll time.Duration, clk heartbeat.Clock) Stream {
	switch s := src.(type) {
	case hbSource:
		return HeartbeatStream(s.hb)
	case fileSource:
		return FileStreamClock(s.r, poll, 0, clk)
	case logSource:
		return LogStreamClock(s.r, poll, 0, clk)
	default:
		return PollStreamClock(src, poll, clk)
	}
}
