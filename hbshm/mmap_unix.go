//go:build unix

package hbshm

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps f's first size bytes shared; writable selects the
// protection. The mapping is shared (MAP_SHARED) in both cases — that is
// the whole point: stores by the writing process are the loads of every
// observer.
func mmapFile(f *os.File, size int, writable bool) ([]byte, error) {
	prot := syscall.PROT_READ
	if writable {
		prot |= syscall.PROT_WRITE
	}
	mem, err := syscall.Mmap(int(f.Fd()), 0, size, prot, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("hbshm: mmap: %w", err)
	}
	return mem, nil
}

func munmap(mem []byte) error {
	if mem == nil {
		return nil
	}
	return syscall.Munmap(mem)
}
