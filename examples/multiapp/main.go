// Multi-application scheduling (§1, §2.4): two heartbeat-enabled
// applications with different goals share one eight-core machine. The
// partitioner sees nothing but heartbeats and advertised target windows,
// yet keeps both applications on goal while one's load shifts — the
// "best global outcome" the paper argues registered goals enable, and the
// scheduling behaviour an "organic OS" would build in.
//
// Both the partitioner and an observer.Hub consume the applications as
// incremental streams: each decision and each health judgment reads only
// the beats registered since the last one, and the hub multiplexes every
// application's stream into one loop with per-application status fan-out —
// the library form of what used to be a hand-rolled per-app polling loop.
//
//	go run ./examples/multiapp
package main

import (
	"fmt"
	"log"
	"time"

	"repro/heartbeat"
	"repro/observer"
	"repro/scheduler"
	"repro/sim"
)

func main() {
	clk := sim.NewClock(time.Time{})
	cluster := sim.NewCluster(clk, 8, 1e6)

	mkApp := func(name string, min, max float64, opsFn func(beat uint64) float64, pf float64) (*heartbeat.Heartbeat, *sim.Proc) {
		hb, err := heartbeat.New(10, heartbeat.WithClock(clk))
		if err != nil {
			log.Fatal(err)
		}
		if err := hb.SetTarget(min, max); err != nil {
			log.Fatal(err)
		}
		beat := uint64(0)
		proc := cluster.AddProc(name, 1, func() (sim.Work, bool) {
			if beat > 0 {
				hb.Beat()
			}
			beat++
			return sim.Work{Ops: opsFn(beat), ParallelFrac: pf}, true
		})
		return hb, proc
	}

	// "video": an interactive app that wants 8-10 beats/s; its content
	// gets harder halfway through. "indexer": a background job content
	// with 2-3 beats/s.
	harder := uint64(0)
	videoHB, videoProc := mkApp("video", 8, 10, func(beat uint64) float64 {
		if harder > 0 && beat > harder {
			return 0.58e6
		}
		return 0.42e6
	}, 0.95)
	indexHB, indexProc := mkApp("indexer", 2, 3, func(uint64) float64 { return 0.8e6 }, 0.90)

	part, err := scheduler.NewPartitioner(8, 10)
	if err != nil {
		log.Fatal(err)
	}
	// Each consumer opens its own stream: the partitioner and the hub each
	// hold an independent cursor into the same heartbeat histories.
	if err := part.AddStream("video", observer.HeartbeatStream(videoHB), videoProc.SetCores, 1); err != nil {
		log.Fatal(err)
	}
	if err := part.AddStream("indexer", observer.HeartbeatStream(indexHB), indexProc.SetCores, 1); err != nil {
		log.Fatal(err)
	}

	// The hub multiplexes every application's health into one place; here
	// it reports health transitions as they happen.
	health := map[string]observer.Health{}
	hub := observer.NewHub(0, func(name string, st observer.Status) {
		if st.Health != health[name] {
			fmt.Printf("          hub: %s -> %s (%.2f beats/s)\n", name, st.Health, st.Rate)
			health[name] = st.Health
		}
	}, observer.WithHubClassifier(func(string) *observer.Classifier {
		return &observer.Classifier{Clock: clk}
	}))
	if err := hub.Add("video", observer.HeartbeatStream(videoHB)); err != nil {
		log.Fatal(err)
	}
	if err := hub.Add("indexer", observer.HeartbeatStream(indexHB)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("decision  video: rate cores [goal 8-10]   indexer: rate cores [goal 2-3]   free")
	for step := 1; step <= 200; step++ {
		if step == 80 {
			harder = videoHB.Count()
			fmt.Println("-- video content becomes ~1.4x harder --")
		}
		cluster.RunUntil(clk.Now().Add(2 * time.Second))
		sts, err := part.Step()
		if err != nil {
			log.Fatal(err)
		}
		hub.Step()
		if step%20 == 0 || step == 81 || step == 82 {
			fmt.Printf("%8d  %12.2f %5d   %18.2f %5d   %4d\n",
				step, sts[0].Rate, sts[0].Cores, sts[1].Rate, sts[1].Cores, part.Free())
		}
	}
	fmt.Println("\nboth goals held through the load shift; unused cores stay free for other work")
}
