// Package scheduler implements the paper's external observer (§5.3): a
// service that reads an application's heart rate and target window through
// the Heartbeats interface and adjusts the number of cores allocated to the
// application, using the minimum resources that keep performance inside the
// window. The scheduler never inspects the application itself — only its
// heartbeats — which is the paper's central argument: decisions are based
// directly on application-defined performance, not on proxies like priority
// or utilization.
package scheduler

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/control"
	"repro/heartbeat"
	"repro/observer"
)

// CoreMachine is the resource actuator: something that can grant cores to
// the observed application. sim.Machine implements it; a real deployment
// would wrap CPU-affinity syscalls.
type CoreMachine interface {
	// SetCores grants n cores, clamped to the machine's limits, and
	// returns the effective allocation.
	SetCores(n int) int
	// Cores returns the current effective allocation.
	Cores() int
	// MaxCores returns the largest grantable allocation.
	MaxCores() int
}

// Policy maps one heart-rate observation to a desired core count.
type Policy interface {
	DesiredCores(rate float64, rateOK bool, current, max int) int
}

// StepperPolicy adapts the paper's threshold stepper: one core up when the
// rate is below the window, one down when above.
type StepperPolicy struct {
	Stepper *control.Stepper
}

// DesiredCores implements Policy.
func (p StepperPolicy) DesiredCores(rate float64, rateOK bool, current, max int) int {
	switch p.Stepper.Decide(rate, rateOK) {
	case control.StepUp:
		return current + 1
	case control.StepDown:
		return current - 1
	default:
		return current
	}
}

// PIPolicy adapts a PI controller whose output is interpreted as a
// fractional core count; the extension ablated against the stepper.
type PIPolicy struct {
	PI *control.PI
	// Dt is the assumed seconds between observations (e.g. the polling
	// interval or the expected window duration).
	Dt float64
}

// DesiredCores implements Policy.
func (p PIPolicy) DesiredCores(rate float64, rateOK bool, current, max int) int {
	if !rateOK {
		return current
	}
	return int(math.Round(p.PI.Update(rate, p.Dt)))
}

// Sample records one scheduling decision, for experiment traces.
type Sample struct {
	Beat      uint64  // application beat count at decision time
	Rate      float64 // observed heart rate (beats/s)
	RateOK    bool
	Cores     int // allocation after the decision
	TargetMin float64
	TargetMax float64
}

// CoreScheduler couples an application's heartbeat stream to a CoreMachine
// through a Policy. Drive it either by calling Step at decision points
// (the deterministic experiment harness does this once per heartbeat
// window) or with Run for a wall-clock loop.
//
// Observation is incremental: the scheduler consumes an observer.Stream
// into a private observer.Window, so each decision reads only the records
// published since the previous one — a decision point at which the
// application made no progress costs no per-record work, where the
// snapshot-era scheduler re-fetched and re-decoded the whole window every
// cycle.
type CoreScheduler struct {
	stream observer.Stream
	// ownsStream marks a stream the scheduler derived itself (from the
	// Source given to New) and must therefore release in Close; a stream
	// supplied via WithStream belongs to the caller.
	ownsStream bool
	machine    CoreMachine
	policy     Policy
	window     int // observation window in beats (0: source default)
	win        *observer.Window
	eof        bool
	clk        heartbeat.Clock // nil = wall clock; paces Run's decision cadence
}

// Option configures New.
type Option func(*CoreScheduler)

// WithWindow sets the observation window in beats used for rate
// measurements (default: the application's default window).
func WithWindow(n int) Option { return func(s *CoreScheduler) { s.window = n } }

// WithStream has the scheduler consume the given stream instead of
// deriving one from the Source passed to New (which may then be nil).
func WithStream(st observer.Stream) Option { return func(s *CoreScheduler) { s.stream = st } }

// WithClock runs the decision loop on an explicit clock: Run's intervals
// follow clk (virtual for a sim.Clock), so a simulated scheduler decides
// on the simulation's schedule instead of the host's. A nil clk is the
// wall clock. Step is unaffected — it is already clock-free.
func WithClock(clk heartbeat.Clock) Option { return func(s *CoreScheduler) { s.clk = clk } }

// New creates a scheduler observing source. A nil machine or policy is an
// error; source may only be nil when WithStream supplies the stream.
func New(source observer.Source, machine CoreMachine, policy Policy, opts ...Option) (*CoreScheduler, error) {
	if machine == nil || policy == nil {
		return nil, fmt.Errorf("scheduler: nil machine or policy")
	}
	s := &CoreScheduler{machine: machine, policy: policy}
	for _, o := range opts {
		o(s)
	}
	if s.stream == nil {
		if source == nil {
			return nil, fmt.Errorf("scheduler: nil source, machine, or policy")
		}
		s.stream = observer.StreamOfClock(source, 0, s.clk)
		s.ownsStream = true
	}
	s.win = observer.NewWindow(s.window)
	return s, nil
}

// Close releases the stream the scheduler derived from its Source, if
// any (in-process streams hold a subscription on the observed Heartbeat
// for as long as they live). Streams supplied via WithStream are the
// caller's to close. Close a scheduler once no Run or Step is active.
func (s *CoreScheduler) Close() error {
	if !s.ownsStream {
		return nil
	}
	s.ownsStream = false
	if c, ok := s.stream.(io.Closer); ok {
		return c.Close()
	}
	return nil
}

// Step performs one observe–decide–actuate cycle: absorb the records
// published since the last cycle, then decide from the accumulated window.
// Once the stream ends (the observed Heartbeat was closed) the scheduler
// keeps deciding from the final window.
func (s *CoreScheduler) Step() (Sample, error) {
	if !s.eof {
		eof, err := observer.DrainInto(s.stream, s.win)
		if eof {
			s.eof = true
		}
		if err != nil {
			return Sample{}, fmt.Errorf("scheduler: %w", err)
		}
	}
	return s.decide(), nil
}

// decide runs the policy against the current window state.
func (s *CoreScheduler) decide() Sample {
	r, ok := s.win.RateOver(s.window)
	cur, max := s.machine.Cores(), s.machine.MaxCores()
	desired := s.policy.DesiredCores(r.PerSec, ok, cur, max)
	granted := cur
	if desired != cur {
		granted = s.machine.SetCores(desired)
	}
	tmin, tmax, _ := s.win.Target()
	return Sample{
		Beat:      s.win.Count(),
		Rate:      r.PerSec,
		RateOK:    ok,
		Cores:     granted,
		TargetMin: tmin,
		TargetMax: tmax,
	}
}

// Run decides every interval until ctx is cancelled, invoking onSample (if
// non-nil) after each cycle and onError (if non-nil) on failures. Between
// decisions it blocks on the stream, absorbing batches as the application
// publishes them, so an idle application costs nothing per tick. A
// non-positive interval is clamped to a 100ms decision cadence (the
// ticker-era Run panicked on one; the stream loop would busy-spin).
func (s *CoreScheduler) Run(ctx context.Context, interval time.Duration, onSample func(Sample), onError func(error)) {
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	for {
		sample, err := s.Step()
		if err != nil {
			if onError != nil {
				onError(err)
			}
		} else if onSample != nil {
			onSample(sample)
		}
		if ctx.Err() != nil {
			return
		}
		if err := s.collect(ctx, s.now().Add(interval)); err != nil {
			if ctx.Err() != nil {
				return
			}
			if onError != nil {
				onError(err)
			}
		}
		if ctx.Err() != nil {
			return
		}
	}
}

// collect absorbs stream batches until deadline or ctx cancellation.
// After a stream end or error, the remaining interval is waited out so a
// dead or failing source cannot spin the decision loop.
func (s *CoreScheduler) collect(ctx context.Context, deadline time.Time) error {
	var streamErr error
	if s.eof {
		// Nothing more will ever arrive; just keep the decision cadence.
	} else {
		eof, err := observer.CollectIntoClock(ctx, s.stream, s.win, deadline, s.clk)
		if eof {
			s.eof = true
		}
		switch {
		case err == nil:
			return nil // the interval elapsed (or the stream just ended)
		case errors.Is(err, ctx.Err()) && ctx.Err() != nil:
			return nil // cancelled: Run checks ctx itself
		default:
			streamErr = err
		}
	}
	if d := deadline.Sub(s.now()); d > 0 {
		select {
		case <-ctx.Done():
		case <-heartbeat.After(s.clk, d):
		}
	}
	return streamErr
}

// now reads the scheduler's clock, falling back to the wall clock.
func (s *CoreScheduler) now() time.Time { return heartbeat.Now(s.clk) }
