package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.StdDev != 0 {
		t.Fatalf("Summarize(nil) = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || s.Min != 7 || s.Max != 7 || s.StdDev != 0 {
		t.Fatalf("Summarize([7]) = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || !approx(s.Mean, 5, 1e-12) || s.Min != 2 || s.Max != 9 {
		t.Fatalf("Summarize = %+v", s)
	}
	if !approx(s.StdDev, 2, 1e-12) { // classic textbook sample
		t.Fatalf("StdDev = %v, want 2", s.StdDev)
	}
}

func TestCV(t *testing.T) {
	if cv := (Summary{Mean: 0, StdDev: 5}).CV(); cv != 0 {
		t.Fatalf("CV with zero mean = %v, want 0", cv)
	}
	if cv := (Summary{Mean: 4, StdDev: 2}).CV(); !approx(cv, 0.5, 1e-12) {
		t.Fatalf("CV = %v, want 0.5", cv)
	}
}

// Property: Min <= Mean <= Max for any non-empty sample.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: constant samples have zero standard deviation.
func TestConstantSampleProperty(t *testing.T) {
	f := func(v int16, n uint8) bool {
		if n == 0 {
			return true
		}
		xs := make([]float64, int(n))
		for i := range xs {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return approx(s.StdDev, 0, 1e-9) && approx(s.Mean, float64(v), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEWMA(t *testing.T) {
	e := EWMA{Alpha: 0.5}
	if e.Initialized() {
		t.Fatal("zero EWMA reports initialized")
	}
	if got := e.Update(10); got != 10 {
		t.Fatalf("first Update = %v, want 10 (seeds with first value)", got)
	}
	if got := e.Update(20); !approx(got, 15, 1e-12) {
		t.Fatalf("second Update = %v, want 15", got)
	}
	if !approx(e.Value(), 15, 1e-12) || !e.Initialized() {
		t.Fatalf("Value = %v", e.Value())
	}
}

// Property: an EWMA of values inside [lo, hi] stays inside [lo, hi].
func TestEWMABoundedProperty(t *testing.T) {
	f := func(raw []uint8, alphaRaw uint8) bool {
		alpha := (float64(alphaRaw)/255)*0.99 + 0.01
		e := EWMA{Alpha: alpha}
		for _, r := range raw {
			v := e.Update(float64(r))
			if v < 0 || v > 255 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 3) != 3 || Clamp(-1, 0, 3) != 0 || Clamp(2, 0, 3) != 2 {
		t.Fatal("Clamp misbehaves")
	}
	if ClampInt(5, 0, 3) != 3 || ClampInt(-1, 0, 3) != 0 || ClampInt(2, 0, 3) != 2 {
		t.Fatal("ClampInt misbehaves")
	}
}
