package balance

import (
	"testing"
	"time"

	"repro/heartbeat"
	"repro/observer"
)

func live(app string, perSec float64) observer.Rollup {
	r := observer.Rollup{App: app, Records: 10}
	if perSec > 0 {
		r.Rate = heartbeat.Rate{PerSec: perSec, Beats: 10, Span: time.Second}
		r.RateOK = true
	}
	return r
}

func silent(app string) observer.Rollup { return observer.Rollup{App: app} }

func lapped(app string, missed uint64) observer.Rollup {
	return observer.Rollup{App: app, Missed: missed}
}

func newTestUpdater(p Policy) (*Updater, *[]Swap) {
	swaps := &[]Swap{}
	u := NewUpdater(New(WithBuckets(64)), p, WithOnSwap(func(s Swap) {
		*swaps = append(*swaps, s)
	}))
	return u, swaps
}

func TestSingleSilentWindowDoesNotFlap(t *testing.T) {
	u, swaps := newTestUpdater(DefaultPolicy())
	u.Absorb(live("a", 0), live("b", 0))
	if w := u.Weight("a"); w != 1 {
		t.Fatalf("fresh live node weight = %v, want 1", w)
	}
	before := len(*swaps)

	u.Absorb(silent("a")) // one bad window
	if w := u.Weight("a"); w != 1 {
		t.Fatalf("weight after one silent window = %v, want 1 (hysteresis)", w)
	}
	if len(*swaps) != before {
		t.Fatalf("one silent window caused a table swap: %+v", (*swaps)[before:])
	}

	u.Absorb(live("a", 0)) // recovers; still no swap needed
	if w := u.Weight("a"); w != 1 {
		t.Fatalf("weight after recovery = %v, want 1", w)
	}
	if len(*swaps) != before {
		t.Fatalf("a one-window blip churned the table: %+v", (*swaps)[before:])
	}
}

func TestSustainedFlatlineDrains(t *testing.T) {
	u, _ := newTestUpdater(DefaultPolicy()) // DrainAfter: 2
	u.Absorb(live("a", 0))
	u.Absorb(silent("a"))
	if w := u.Weight("a"); w != 1 {
		t.Fatalf("drained after a single silent window: weight %v", w)
	}
	u.Absorb(silent("a"))
	if w := u.Weight("a"); w != 0 {
		t.Fatalf("still weighted %v after DrainAfter silent windows, want 0", w)
	}
	// Traffic must stop flowing to the drained node.
	if _, ok := u.Table().Pick(99); ok {
		t.Fatalf("all nodes drained but Pick still routes")
	}
}

func TestReclaimRampAfterRecovery(t *testing.T) {
	u, _ := newTestUpdater(DefaultPolicy()) // ReclaimAfter: 2, start 0.25
	u.Absorb(live("a", 0))
	u.Absorb(silent("a"), silent("a")) // hold, then drain — separate windows
	u.Absorb(silent("a"))
	if w := u.Weight("a"); w != 0 {
		t.Fatalf("weight = %v, want drained", w)
	}

	u.Absorb(live("a", 0)) // 1st good window: not yet
	if w := u.Weight("a"); w != 0 {
		t.Fatalf("reclaimed after one good window: %v", w)
	}
	want := []float64{0.25, 0.5, 1, 1}
	for i, exp := range want {
		u.Absorb(live("a", 0))
		if w := u.Weight("a"); w != exp {
			t.Fatalf("ramp step %d: weight = %v, want %v", i, w, exp)
		}
	}
}

func TestRampRestartsOnFlapDuringReclaim(t *testing.T) {
	u, _ := newTestUpdater(DefaultPolicy())
	u.Absorb(live("a", 0))
	u.Absorb(silent("a"), silent("a"), silent("a"))
	u.Absorb(live("a", 0), live("a", 0), live("a", 0)) // -> 0, 0.25, 0.5
	if w := u.Weight("a"); w != 0.5 {
		t.Fatalf("mid-ramp weight = %v, want 0.5", w)
	}
	u.Absorb(silent("a")) // flap mid-ramp
	if w := u.Weight("a"); w != 0.5 {
		t.Fatalf("one silent window mid-ramp dropped weight to %v", w)
	}
	u.Absorb(live("a", 0)) // good run broke; must re-confirm, not jump
	if w := u.Weight("a"); w != 0.5 {
		t.Fatalf("weight = %v right after mid-ramp flap, want held 0.5", w)
	}
	u.Absorb(live("a", 0), live("a", 0))
	if w := u.Weight("a"); w != 1 {
		t.Fatalf("ramp did not resume: weight %v, want 1", w)
	}
}

// TestRestartResyncKeepsWeight is the Life-rotation edge: a producer
// restart shows up as windows whose records were lapped before delivery
// (Records == 0, Missed > 0) and cumulative Count regressing — evidence
// the producer is ALIVE. Its weight must not move.
func TestRestartResyncKeepsWeight(t *testing.T) {
	u, swaps := newTestUpdater(DefaultPolicy())
	u.Absorb(live("a", 0))
	before := len(*swaps)

	r := lapped("a", 500) // reconnect gap: everything lapped, nothing silent
	u.Absorb(r)
	if w := u.Weight("a"); w != 1 {
		t.Fatalf("lapped-but-alive window moved weight to %v", w)
	}

	resync := live("a", 0)
	resync.Count = 3 // cumulative count regressed: new life
	u.Absorb(resync)
	if w := u.Weight("a"); w != 1 {
		t.Fatalf("restart resync moved weight to %v", w)
	}
	if len(*swaps) != before {
		t.Fatalf("restart resync churned the table: %+v", (*swaps)[before:])
	}
}

func TestStatusFlatlineDrainsImmediately(t *testing.T) {
	u, _ := newTestUpdater(DefaultPolicy())
	u.Absorb(live("a", 0))
	u.ApplyStatus("a", observer.Status{Health: observer.Flatlined})
	if w := u.Weight("a"); w != 0 {
		t.Fatalf("Flatlined status left weight %v", w)
	}
	// A single live window must not snap it back: the reclaim ramp owns
	// recovery even when the drain came from the classifier.
	u.Absorb(live("a", 0))
	if w := u.Weight("a"); w != 0 {
		t.Fatalf("weight %v after one post-flatline window, want 0", w)
	}
	u.Absorb(live("a", 0))
	if w := u.Weight("a"); w != 0.25 {
		t.Fatalf("weight %v, want reclaim ramp at 0.25", w)
	}
}

func TestStatusSlowCapsWeight(t *testing.T) {
	u, _ := newTestUpdater(DefaultPolicy())
	u.Absorb(live("a", 0))
	u.ApplyStatus("a", observer.Status{Health: observer.Slow})
	if w := u.Weight("a"); w != 0.5 {
		t.Fatalf("Slow status left weight %v, want capped 0.5", w)
	}
	// Rollups while still Slow must not push past the cap.
	u.Absorb(live("a", 0))
	if w := u.Weight("a"); w != 0.5 {
		t.Fatalf("rollup pushed a Slow node to %v, want 0.5", w)
	}
	// Healthy clears the cap; the next rollup restores full weight.
	u.ApplyStatus("a", observer.Status{Health: observer.Healthy})
	if w := u.Weight("a"); w != 0.5 {
		t.Fatalf("Healthy status alone moved weight to %v (rollups own upward moves)", w)
	}
	u.Absorb(live("a", 0))
	if w := u.Weight("a"); w != 1 {
		t.Fatalf("weight %v after cap cleared, want 1", w)
	}
}

func TestMinDeltaSuppressesJitter(t *testing.T) {
	p := DefaultPolicy()
	p.ExpectedRate = 100
	u, swaps := newTestUpdater(p)
	u.Absorb(live("a", 100))
	if w := u.Weight("a"); w != 1 {
		t.Fatalf("on-rate node weight = %v", w)
	}
	base := len(*swaps)
	u.Absorb(live("a", 97), live("a", 102), live("a", 95))
	if len(*swaps) != base {
		t.Fatalf("±5%% rate jitter swapped the table: %+v", (*swaps)[base:])
	}
	// A real degradation (half rate) exceeds MinDelta and applies.
	u.Absorb(live("a", 50))
	if w := u.Weight("a"); w != 0.5 {
		t.Fatalf("half-rate node weight = %v, want 0.5", w)
	}
}

func TestFreshSilentNodeStaysOut(t *testing.T) {
	u, _ := newTestUpdater(DefaultPolicy())
	u.Absorb(live("a", 0))
	u.Absorb(silent("ghost")) // tracked but never alive
	if w := u.Weight("ghost"); w != 0 {
		t.Fatalf("never-alive node admitted at weight %v", w)
	}
	for k := uint64(0); k < 256; k++ {
		if n, _ := u.Table().Pick(k); n == "ghost" {
			t.Fatalf("traffic routed to a never-alive node")
		}
	}
}
