// Quickstart: instrument an application with Application Heartbeats,
// advertise a performance goal, and observe progress — the minimal pattern
// every other example builds on.
//
// The "application" processes batches of real work (Black-Scholes option
// pricing), beats once per batch, and watches its own heart rate.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/heartbeat"
	"repro/internal/parsec"
)

func main() {
	// 1. Initialize with a default averaging window of 10 beats.
	hb, err := heartbeat.New(10)
	if err != nil {
		log.Fatal(err)
	}
	defer hb.Close()

	// 2. Advertise the goal: 50-200 batches per second.
	if err := hb.SetTarget(50, 200); err != nil {
		log.Fatal(err)
	}

	kernel := parsec.NewBlackscholes()
	rng := rand.New(rand.NewSource(1))
	var checksum uint64

	const batches = 60
	for batch := 1; batch <= batches; batch++ {
		// One batch of real work: price 2000 options.
		for i := 0; i < 2000; i++ {
			cs, _ := kernel.DoUnit(rng)
			checksum ^= cs
		}

		// 3. Register progress.
		hb.BeatTag(int64(batch))

		// 4. Observe: the application reads its own heart rate and could
		// adapt (shrink batches, shed precision, ...) if it missed goal.
		if batch%10 == 0 {
			if rate, ok := hb.Rate(0); ok {
				min, max, _ := hb.Target()
				status := "on target"
				if rate < min {
					status = "TOO SLOW"
				} else if rate > max {
					status = "faster than needed"
				}
				fmt.Printf("batch %3d: %8.1f beats/s (goal %g-%g) — %s\n",
					batch, rate, min, max, status)
			}
		}
	}

	// 5. The history is available for deeper analysis (HB_get_history).
	recs := hb.History(5)
	fmt.Println("\nlast 5 heartbeats:")
	for _, r := range recs {
		fmt.Printf("  seq %2d  tag %2d  %s\n", r.Seq, r.Tag, r.Time.Format("15:04:05.000000"))
	}
	fmt.Printf("\ntotal beats: %d (checksum %x)\n", hb.Count(), checksum&0xffff)
}
