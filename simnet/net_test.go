package simnet

import (
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"repro/sim"
)

func pair(t *testing.T, nw *Network, host, address string) (client, server net.Conn) {
	t.Helper()
	ln, err := nw.Listen(address)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := nw.Host(host).DialContext(context.Background(), "tcp", address)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-accepted:
		return c, s
	case <-time.After(5 * time.Second):
		t.Fatal("accept never completed")
		return nil, nil
	}
}

func TestRoundTripAndClose(t *testing.T) {
	nw := New(nil)
	c, s := pair(t, nw, "client", "srv")
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(s, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("read %q, %v", buf, err)
	}
	// Clean close: the peer drains in-flight bytes, then sees EOF.
	if _, err := s.Write([]byte("by")); err != nil {
		t.Fatal(err)
	}
	s.Close()
	got := make([]byte, 2)
	if _, err := io.ReadFull(c, got); err != nil || string(got) != "by" {
		t.Fatalf("drain after close: %q, %v", got, err)
	}
	if _, err := c.Read(got); err != io.EOF {
		t.Fatalf("want EOF after drain, got %v", err)
	}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write to closed peer succeeded")
	}
}

func TestDialFailures(t *testing.T) {
	nw := New(nil)
	if _, err := nw.Host("h").DialContext(context.Background(), "tcp", "nowhere"); err == nil {
		t.Fatal("dial to unbound address succeeded")
	}
	ln, err := nw.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nw.Listen("srv"); err == nil {
		t.Fatal("double bind succeeded")
	}
	nw.SetListenerDown("srv", true)
	if _, err := nw.Host("h").DialContext(context.Background(), "tcp", "srv"); err == nil {
		t.Fatal("dial to downed listener succeeded")
	}
	nw.SetListenerDown("srv", false)
	go func() {
		c, _ := ln.Accept()
		if c != nil {
			c.Close()
		}
	}()
	if _, err := nw.Host("h").DialContext(context.Background(), "tcp", "srv"); err != nil {
		t.Fatalf("dial after listener resume: %v", err)
	}
	// Close releases the address for a restarted server.
	ln.Close()
	if _, err := nw.Listen("srv"); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestPartitionSeversAndRefuses(t *testing.T) {
	nw := New(nil)
	c, s := pair(t, nw, "client", "srv")
	nw.Partition("client", "srv")
	if _, err := c.Read(make([]byte, 1)); err == nil || err == io.EOF {
		t.Fatalf("read on partitioned conn: %v", err)
	}
	if _, err := s.Write([]byte("x")); err == nil {
		t.Fatal("write on partitioned conn succeeded")
	}
	if _, err := nw.Host("client").DialContext(context.Background(), "tcp", "srv"); err == nil {
		t.Fatal("dial across partition succeeded")
	}
	nw.Heal("client", "srv")
	c2, s2 := pair(t, nw, "client", "srv2")
	defer c2.Close()
	defer s2.Close()
	if _, err := c2.Write([]byte("ok")); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}

func TestCutLinkIsOneShot(t *testing.T) {
	nw := New(nil)
	c, _ := pair(t, nw, "client", "srv")
	nw.CutLink("client", "srv")
	if _, err := c.Read(make([]byte, 1)); err == nil || err == io.EOF {
		t.Fatalf("read on cut conn: %v", err)
	}
	c2, s2 := pair(t, nw, "client", "srv2") // redial succeeds immediately
	defer c2.Close()
	defer s2.Close()
}

func TestDropAfterBytes(t *testing.T) {
	nw := New(nil)
	c, s := pair(t, nw, "client", "srv")
	nw.DropAfterBytes("client", "srv", 10)
	if n, err := c.Write([]byte("12345")); n != 5 || err != nil {
		t.Fatalf("first write: %d, %v", n, err)
	}
	// This write crosses byte 10: 5 bytes deliver, then the conn severs.
	n, err := c.Write([]byte("6789AB"))
	if n != 5 || !errors.Is(err, errSevered) {
		t.Fatalf("crossing write: %d, %v", n, err)
	}
	buf := make([]byte, 10)
	if _, err := io.ReadFull(s, buf); err == nil {
		t.Fatal("severed conn delivered beyond the cut")
	}
	// The trigger is one-shot: a new conn carries unlimited bytes.
	c2, s2 := pair(t, nw, "client", "srv2")
	defer c2.Close()
	defer s2.Close()
	if _, err := c2.Write(make([]byte, 1<<16)); err != nil {
		t.Fatalf("post-trigger write: %v", err)
	}
	_ = s2
}

func TestLatencyOnVirtualClock(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	nw := New(clk)
	nw.SetLatency("client", "srv", 250*time.Millisecond)
	c, s := pair(t, nw, "client", "srv")
	defer c.Close()
	defer s.Close()
	if _, err := c.Write([]byte("delayed")); err != nil {
		t.Fatal(err)
	}
	read := make(chan []byte, 1)
	go func() {
		buf := make([]byte, 7)
		if _, err := io.ReadFull(s, buf); err == nil {
			read <- buf
		}
	}()
	select {
	case <-read:
		t.Fatal("bytes arrived before the virtual latency elapsed")
	case <-time.After(50 * time.Millisecond):
	}
	clk.Advance(300 * time.Millisecond)
	select {
	case buf := <-read:
		if string(buf) != "delayed" {
			t.Fatalf("got %q", buf)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("bytes never arrived after advancing the clock")
	}
}

func TestReadDeadline(t *testing.T) {
	nw := New(nil)
	c, s := pair(t, nw, "client", "srv")
	defer c.Close()
	defer s.Close()
	c.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	_, err := c.Read(make([]byte, 1))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("want timeout, got %v", err)
	}
}
