// Package ring provides the fixed-capacity ring buffers behind heartbeat
// histories: Buffer, a plain generic ring for externally synchronized use,
// and SP, a lock-free single-producer multi-reader ring that run-length
// encodes timestamps — the storage behind the sharded beat hot path.
//
// Buffer is not safe for concurrent use; callers synchronize externally.
// SP allows one pushing goroutine and any number of concurrent readers.
package ring

// Buffer is a fixed-capacity ring retaining the last cap values.
type Buffer[T any] struct {
	buf   []T
	total uint64 // number of values ever pushed
}

// New returns a Buffer retaining the last capacity values.
// It panics if capacity <= 0.
func New[T any](capacity int) *Buffer[T] {
	if capacity <= 0 {
		panic("ring: capacity must be positive")
	}
	return &Buffer[T]{buf: make([]T, capacity)}
}

// Cap returns the buffer capacity.
func (b *Buffer[T]) Cap() int { return len(b.buf) }

// Len returns the number of retained values: min(total pushed, capacity).
func (b *Buffer[T]) Len() int {
	if b.total < uint64(len(b.buf)) {
		return int(b.total)
	}
	return len(b.buf)
}

// Total returns the number of values ever pushed.
func (b *Buffer[T]) Total() uint64 { return b.total }

// Push appends v, evicting the oldest value if the buffer is full.
func (b *Buffer[T]) Push(v T) {
	b.buf[b.total%uint64(len(b.buf))] = v
	b.total++
}

// Skip advances the buffer past n values without storing them, as if n
// zero values had been pushed: the skipped positions read back as zero
// values and older values they displace are evicted. The batched heartbeat
// aggregator uses this to account for records that a bounded history would
// immediately discard, without materializing them.
func (b *Buffer[T]) Skip(n uint64) {
	var zero T
	clear := n
	if clear > uint64(len(b.buf)) {
		clear = uint64(len(b.buf))
	}
	for i := uint64(0); i < clear; i++ {
		b.buf[(b.total+i)%uint64(len(b.buf))] = zero
	}
	b.total += n
}

// At returns the i-th retained value, 0 being the oldest.
// It panics if i is out of [0, Len()).
func (b *Buffer[T]) At(i int) T {
	n := b.Len()
	if i < 0 || i >= n {
		panic("ring: index out of range")
	}
	start := b.total - uint64(n)
	return b.buf[(start+uint64(i))%uint64(len(b.buf))]
}

// Last returns up to n most recent values, ordered oldest to newest.
// A non-positive n yields nil.
func (b *Buffer[T]) Last(n int) []T {
	if n <= 0 {
		return nil
	}
	have := b.Len()
	if n > have {
		n = have
	}
	if n == 0 {
		return nil
	}
	out := make([]T, n)
	for i := 0; i < n; i++ {
		out[i] = b.At(have - n + i)
	}
	return out
}

// Snapshot returns all retained values, ordered oldest to newest.
func (b *Buffer[T]) Snapshot() []T { return b.Last(b.Len()) }
