package hbshm

import (
	"sync/atomic"
	"unsafe"
)

// Atomic views over the mapped region. Every mutable word in the layout is
// 8-byte aligned (the mapping is page-aligned and all offsets are
// multiples of 8), which is what makes addressing mapped bytes as atomics
// sound — the same trick the in-process store plays with ordinary struct
// fields, relocated into memory two processes share.

func wordU64(mem []byte, off int) *atomic.Uint64 {
	return (*atomic.Uint64)(unsafe.Pointer(&mem[off]))
}

func wordI64(mem []byte, off int) *atomic.Int64 {
	return (*atomic.Int64)(unsafe.Pointer(&mem[off]))
}

func wordI32(mem []byte, off int) *atomic.Int32 {
	return (*atomic.Int32)(unsafe.Pointer(&mem[off]))
}
