package heartbeat

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultWindow is the default-window fallback used when New is given a
// window of 0.
const DefaultWindow = 20

// Heartbeat is an application's heartbeat handle: a global history of
// records, a default averaging window, and an advertised target heart-rate
// range. A single Heartbeat is shared by the whole application; per-thread
// histories hang off it via Thread. All methods are safe for concurrent use.
//
// Global state is sharded: each registered Thread writes its global beats
// into a private lock-free ring, and a batched aggregator merges the shards
// into the global history on read, on the flush interval configured with
// WithFlushInterval, or when a shard's backlog reaches half its capacity —
// whichever comes first. Beats registered directly on the Heartbeat (Beat,
// BeatTag) keep the synchronous behavior of the paper's reference
// implementation: the record is in the history, with its sequence number
// assigned, and delivered to the sink before the call returns.
type Heartbeat struct {
	window   int
	clock    Clock
	nowNanos func() int64
	store    store
	sink     Sink
	agg      *aggregator

	targetMin atomic.Uint64 // math.Float64bits
	targetMax atomic.Uint64
	targetSet atomic.Bool

	// lastDirect clamps direct-beat timestamps non-decreasing across
	// wall-clock steps; direct beats are multi-producer, so unlike
	// Thread.now's plain field this needs an atomic max.
	lastDirect atomic.Int64

	// lastCount keeps Count monotonic when it falls back to the
	// lock-free estimate during a merge.
	lastCount atomic.Uint64

	sinkErr atomic.Pointer[error]

	// subs wakes blocked Subscriptions whenever new records become
	// visible in the store (direct beats immediately, shard beats when a
	// merge publishes them).
	subs subscribers

	flushStop chan struct{}
	flushDone chan struct{}

	mu           sync.Mutex
	threads      []*Thread
	nextThreadID int32
	threadCap    int
	shardCap     int
	closed       bool
}

type config struct {
	capacity   int
	threadCap  int
	shardCap   int
	flushEvery time.Duration
	clock      Clock
	sink       Sink
	locked     bool
}

// Option configures New.
type Option func(*config)

// WithCapacity sets how many global records are retained (the history ring
// size). The default is max(4*window, 64). Capacities below the window are
// raised to the window so the default window is always computable.
func WithCapacity(n int) Option { return func(c *config) { c.capacity = n } }

// WithThreadCapacity sets how many records each per-thread history retains.
// It defaults to the global capacity.
func WithThreadCapacity(n int) Option { return func(c *config) { c.threadCap = n } }

// WithShardCapacity sets the size of each per-thread global shard: the
// lock-free ring Thread.GlobalBeat writes into before aggregation. A shard's
// producer triggers a flush when its backlog reaches half this capacity, so
// larger shards mean larger (and rarer) merge batches. The default is the
// global capacity, but at least 256.
func WithShardCapacity(n int) Option { return func(c *config) { c.shardCap = n } }

// WithFlushInterval starts a background flusher that merges pending shard
// records into the global history (and the sink) every d. Without it, shards
// are merged on every read and whenever a shard fills past half its
// capacity, so a flusher is only needed to bound sink latency while no one
// beats on the global handle or reads.
func WithFlushInterval(d time.Duration) Option { return func(c *config) { c.flushEvery = d } }

// WithClock injects the timestamp source (default: the wall clock).
func WithClock(clk Clock) Option { return func(c *config) { c.clock = clk } }

// WithSink registers a Sink that receives every global record as it is
// produced, e.g. an hbfile.Writer exposing the heartbeat to other processes.
// Direct beats reach the sink synchronously; per-thread global beats reach
// it in aggregation batches (see BatchSink).
func WithSink(s Sink) Option { return func(c *config) { c.sink = s } }

// WithLockedStore selects the mutex-guarded history instead of the default
// lock-free one. It exists for the locking-strategy ablation; the lock-free
// store is preferred.
func WithLockedStore() Option { return func(c *config) { c.locked = true } }

// New creates a Heartbeat whose default averaging window is window beats
// (HB_initialize in the paper). A window of 0 selects DefaultWindow;
// negative windows are an error.
func New(window int, opts ...Option) (*Heartbeat, error) {
	if window < 0 {
		return nil, fmt.Errorf("heartbeat: negative window %d", window)
	}
	if window == 0 {
		window = DefaultWindow
	}
	if window < 2 {
		window = 2 // a rate needs at least two beats
	}
	cfg := config{clock: SystemClock()}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.capacity <= 0 {
		cfg.capacity = 4 * window
		if cfg.capacity < 64 {
			cfg.capacity = 64
		}
	}
	if cfg.capacity < window {
		cfg.capacity = window
	}
	if cfg.threadCap <= 0 {
		cfg.threadCap = cfg.capacity
	}
	if cfg.threadCap < 2 {
		cfg.threadCap = 2
	}
	if cfg.shardCap <= 0 {
		cfg.shardCap = cfg.capacity
		if cfg.shardCap < 256 {
			cfg.shardCap = 256
		}
	}
	if cfg.shardCap < 2 {
		cfg.shardCap = 2
	}
	if cfg.clock == nil {
		return nil, errors.New("heartbeat: nil clock")
	}
	h := &Heartbeat{
		window:    window,
		clock:     cfg.clock,
		nowNanos:  nanosFunc(cfg.clock),
		sink:      cfg.sink,
		threadCap: cfg.threadCap,
		shardCap:  cfg.shardCap,
	}
	if cfg.locked {
		h.store = newLockedStore(cfg.capacity)
	} else {
		h.store = newLockfreeStore(cfg.capacity)
	}
	h.agg = &aggregator{st: h.store, sink: cfg.sink, sinkErr: &h.sinkErr, subs: &h.subs}
	if cfg.flushEvery > 0 {
		h.flushStop = make(chan struct{})
		h.flushDone = make(chan struct{})
		go h.flusher(cfg.flushEvery)
	}
	return h, nil
}

// flusher periodically merges pending shard records until Close, on the
// heartbeat's clock (a real ticker for wall clocks, virtual-timer re-arms
// for a WaitClock — see Ticker).
func (h *Heartbeat) flusher(every time.Duration) {
	defer close(h.flushDone)
	t := NewTicker(h.clock, every)
	defer t.Stop()
	for {
		select {
		case <-h.flushStop:
			return
		case <-t.C():
			t.Next()
			h.agg.flush()
		}
	}
}

// Window returns the default averaging window in beats.
func (h *Heartbeat) Window() int { return h.window }

// Capacity returns how many global records are retained.
func (h *Heartbeat) Capacity() int { return h.store.capacity() }

// Beat registers a global heartbeat with tag 0 (HB_heartbeat, local=false).
func (h *Heartbeat) Beat() { h.beat(0) }

// BeatTag registers a global heartbeat carrying a caller-defined tag, e.g.
// the frame type of a video encoder or a sequence number.
func (h *Heartbeat) BeatTag(tag int64) { h.beat(tag) }

// beat is the direct-beat path; such records carry producer 0
// (thread-attributed beats flow through gshard.beat instead).
func (h *Heartbeat) beat(tag int64) {
	nanos := h.nowNanos()
	for {
		last := h.lastDirect.Load()
		if nanos <= last {
			nanos = last // clock stepped back (or tied): hold the line
			break
		}
		if h.lastDirect.CompareAndSwap(last, nanos) {
			break
		}
	}
	if h.agg.active() && h.agg.hasPending() {
		// Merge pending shard records first so sequence numbers stay
		// ordered, then append and deliver synchronously. With no
		// backlog the beat takes the wait-free append below instead —
		// so direct beats only pay for aggregation when there is
		// something to aggregate. A direct beat racing the very first
		// Thread registration (or a concurrent shard push) may
		// likewise be sequenced before those records — the operations
		// are concurrent, so either order is a valid linearization.
		h.agg.direct(nanos, tag)
		return
	}
	seq := h.store.append(nanos, tag, 0)
	if h.sink != nil {
		r := Record{Seq: seq, Time: time.Unix(0, nanos), Tag: tag, Producer: 0}
		if err := h.sink.WriteRecord(r); err != nil {
			h.sinkErr.Store(&err)
		}
	}
	h.subs.wake()
}

// Flush merges all pending per-thread shard records into the global history
// and delivers them to the sink, if one is attached. Reads flush implicitly;
// Flush exists for callers that need sink delivery bounded without reading.
func (h *Heartbeat) Flush() { h.agg.flush() }

// Count returns the total number of global heartbeats ever registered,
// including per-thread global beats not yet merged into the history. Count
// never blocks behind an in-progress merge: when one is running it falls
// back to a lock-free estimate, clamped so consecutive Counts never go
// backwards; at quiescence it is exact.
func (h *Heartbeat) Count() uint64 {
	if !h.agg.active() {
		return h.store.total()
	}
	var total uint64
	if h.agg.mu.TryLock() {
		total = h.store.total() + h.agg.pendingLocked()
		h.agg.mu.Unlock()
	} else {
		total = h.store.total() + h.agg.pendingEstimate()
	}
	for {
		last := h.lastCount.Load()
		if total <= last {
			return last
		}
		if h.lastCount.CompareAndSwap(last, total) {
			return total
		}
	}
}

// Rate returns the average heart rate over the last window beats
// (HB_current_rate). window == 0 uses the default window; windows larger
// than the retained history are silently clipped. ok is false until at
// least two beats spanning positive time are available.
func (h *Heartbeat) Rate(window int) (perSec float64, ok bool) {
	r, ok := h.RateDetail(window)
	return r.PerSec, ok
}

// RateDetail is Rate with the full measurement (span, window endpoints).
func (h *Heartbeat) RateDetail(window int) (Rate, bool) {
	return rateOf(h.History(h.clipWindow(window)))
}

func (h *Heartbeat) clipWindow(window int) int {
	if window <= 0 {
		return h.window
	}
	if window > h.store.capacity() {
		return h.store.capacity()
	}
	return window
}

// History returns up to n of the most recent global records, oldest to
// newest (HB_get_history). n larger than the retained history is clipped.
// Pending shard records are merged first, so History reflects every beat
// registered before the call — except when another goroutine is already
// mid-merge (or History is invoked from inside a sink callback), in which
// case History reads the store as-is rather than wait: the concurrent merge
// publishes those records for the next read.
func (h *Heartbeat) History(n int) []Record {
	if h.agg.active() && h.agg.mu.TryLock() {
		h.agg.mergeLocked()
		h.agg.mu.Unlock()
	}
	return h.store.last(n)
}

// SetTarget advertises the heart-rate goal [min, max] beats per second
// (HB_set_target_rate) for external observers.
func (h *Heartbeat) SetTarget(min, max float64) error {
	if math.IsNaN(min) || math.IsNaN(max) || min < 0 || max < min {
		return fmt.Errorf("heartbeat: invalid target [%v, %v]", min, max)
	}
	h.targetMin.Store(math.Float64bits(min))
	h.targetMax.Store(math.Float64bits(max))
	h.targetSet.Store(true)
	if h.sink != nil {
		if ts, ok := h.sink.(TargetSink); ok {
			if err := ts.WriteTarget(min, max); err != nil {
				h.sinkErr.Store(&err)
			}
		}
	}
	return nil
}

// Target returns the advertised heart-rate goal (HB_get_target_min/max).
// ok is false if SetTarget was never called.
func (h *Heartbeat) Target() (min, max float64, ok bool) {
	if !h.targetSet.Load() {
		return 0, 0, false
	}
	return math.Float64frombits(h.targetMin.Load()), math.Float64frombits(h.targetMax.Load()), true
}

// Thread registers a per-thread heartbeat handle with a private history and
// a private global shard (the paper's local heartbeats). Each concurrent
// worker should register its own handle; handles remain valid for the life
// of the Heartbeat.
func (h *Heartbeat) Thread(name string) *Thread {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextThreadID++
	t := newThread(h, h.nextThreadID, name, h.threadCap, h.shardCap)
	h.threads = append(h.threads, t)
	return t
}

// Threads returns all registered per-thread handles in registration order.
func (h *Heartbeat) Threads() []*Thread {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Thread, len(h.threads))
	copy(out, h.threads)
	return out
}

// SinkErr returns the most recent error reported by the sink, if any.
func (h *Heartbeat) SinkErr() error {
	if p := h.sinkErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Close stops the background flusher (if any), merges pending shard records
// so the sink has seen every beat, and releases the sink (if it implements
// io.Closer). Beats after Close still record in memory but sink writes will
// report errors via SinkErr. Close is idempotent.
func (h *Heartbeat) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	if h.flushStop != nil {
		close(h.flushStop)
		<-h.flushDone
	}
	h.agg.flush()
	h.subs.close()
	if c, ok := h.sink.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
