package balance_test

import (
	"fmt"

	"repro/balance"
	"repro/observer"
)

// Example walks the closing of the loop: three nodes observed through
// rollup windows, one flatlines and drains, traffic reshuffles minimally,
// and recovery reclaims the exact keys the node held before.
func Example() {
	table := balance.New(balance.WithBuckets(1024))
	updater := balance.NewUpdater(table, balance.DefaultPolicy(),
		balance.WithOnSwap(func(s balance.Swap) {
			fmt.Printf("swap %s %.2f->%.2f moved %4.1f%% of keys (expected ≈%4.1f%%)\n",
				s.Node, s.Old, s.New, 100*s.Frac(), 100*s.Share)
		}))

	live := func(app string) observer.Rollup { return observer.Rollup{App: app, Records: 10} }
	silent := func(app string) observer.Rollup { return observer.Rollup{App: app} }

	// Three healthy windows admit three nodes.
	updater.Absorb(live("a"), live("b"), live("c"))
	where, _ := table.PickString("user-1234")
	fmt.Println("user-1234 ->", where)

	// Node c flatlines: one silent window holds (hysteresis), the second
	// drains it — and only c's share of the key space moves.
	updater.Absorb(silent("c"))
	updater.Absorb(silent("c"))

	// Two live windows confirm recovery; the ramp then reclaims weight
	// until c holds exactly the buckets it held before.
	for i := 0; i < 5; i++ {
		updater.Absorb(live("c"))
	}
	where, _ = table.PickString("user-1234")
	fmt.Println("user-1234 ->", where)

	// Output:
	// swap a 0.00->1.00 moved 100.0% of keys (expected ≈100.0%)
	// swap b 0.00->1.00 moved 52.8% of keys (expected ≈50.0%)
	// swap c 0.00->1.00 moved 33.9% of keys (expected ≈33.3%)
	// user-1234 -> b
	// swap c 1.00->0.00 moved 33.9% of keys (expected ≈33.3%)
	// swap c 0.00->0.25 moved 11.6% of keys (expected ≈11.1%)
	// swap c 0.25->0.50 moved  9.7% of keys (expected ≈10.0%)
	// swap c 0.50->1.00 moved 12.6% of keys (expected ≈16.7%)
	// user-1234 -> b
}
