package hbnet

import (
	"context"
	"errors"
	"io"
)

// Consume opens the feed positioned after emission since and delivers
// every batch to fn, in order, until ctx ends, the feed ends, or fn
// returns an error. A clean feed end (io.EOF) returns nil; cancellation
// returns ctx's error; fn's error is returned as-is. The programmatic
// counterpart of the subscription loop every rollup consumer was writing
// by hand — an Updater's Run, hbmon's -balance mode, and the simnet
// balancer all sit on it.
func (f RollupFeed) Consume(ctx context.Context, since uint64, fn func(RollupBatch) error) error {
	s, err := f(ctx, since)
	if err != nil {
		return err
	}
	if c, ok := s.(io.Closer); ok {
		defer c.Close()
	}
	for {
		b, err := s.Next(ctx)
		// Honor the non-blocking drain contract: data delivered alongside
		// an error is still data.
		if len(b.Rollups) > 0 || b.Missed > 0 {
			if ferr := fn(b); ferr != nil {
				return ferr
			}
		}
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
	}
}

// clientRollupStream adapts a rollup Client to the RollupStream interface
// (Client.Next serves raw feeds; rollup subscriptions read NextRollups).
type clientRollupStream struct{ c *Client }

func (s clientRollupStream) Next(ctx context.Context) (RollupBatch, error) {
	return s.c.NextRollups(ctx)
}

func (s clientRollupStream) Close() error { return s.c.Close() }

// DialRollupFeed adapts a remote rollup feed into a RollupFeed: each open
// dials addr and subscribes to feed after the presented cursor, with the
// client's usual cursor-resume reconnect underneath. It lets everything
// written against a local Relay.RollupFeed() — an Updater, a Consume
// loop — consume a relay across the network unchanged.
func DialRollupFeed(addr, feed string, opts ...ClientOption) RollupFeed {
	return func(ctx context.Context, since uint64) (RollupStream, error) {
		c, err := DialRollupFrom(addr, feed, since, opts...)
		if err != nil {
			return nil, err
		}
		stop := context.AfterFunc(ctx, func() { c.Close() })
		return ctxRollupStream{clientRollupStream{c}, stop}, nil
	}
}

// ctxRollupStream tears the dialed client down when the opening context
// ends, so a cancelled Consume does not leak the connection behind a
// blocked Next.
type ctxRollupStream struct {
	clientRollupStream
	stop func() bool
}

func (s ctxRollupStream) Close() error {
	s.stop()
	return s.clientRollupStream.Close()
}
