package balance

import (
	"repro/observer"
)

// Policy maps one node's observed heartbeat evidence — rollup windows and
// classifier judgments — to a routing weight in [0,1], with hysteresis on
// both edges so evidence from a single window never flaps the table.
//
// The rules, per node:
//
//   - A live window (any records, or losses proving the producer
//     published) targets full weight, clamped by the classifier cap
//     (SlowCap while the classifier judges the node Slow/Erratic) and by
//     the observed/expected rate ratio when ExpectedRate is set.
//   - A silent window (no records AND no losses — the producer published
//     nothing at all) holds the current weight; only DrainAfter
//     consecutive silent windows drain the node to weight 0.
//   - A Flatlined or Dead classifier judgment drains immediately — the
//     classifier has already applied its own grace period.
//   - A drained node reclaims only after ReclaimAfter consecutive live
//     windows, re-entering at ReclaimStart and doubling each further live
//     window until it reaches its target — recovered nodes take traffic
//     back gradually, and a producer flapping faster than the ramp never
//     reaches full weight.
//   - Weight moves smaller than MinDelta are suppressed (except moves to
//     or from 0, which always apply): jitter in observed rate does not
//     churn the table.
//
// Deliberately absent: per-window loss ratios do NOT degrade weight. A
// window's Missed counts records the *observer's view* lost (a lapped
// ring, a reconnect gap) — evidence the producer is alive, not that it is
// unhealthy. Draining on loss would zero exactly the node that just
// recovered from a restart.
type Policy struct {
	// DrainAfter is how many consecutive silent windows drain a node.
	// Values below 1 mean the default, 2 — one bad window never drains.
	DrainAfter int
	// ReclaimAfter is how many consecutive live windows a drained node
	// must show before reclaiming weight. Values below 1 mean the
	// default, 2.
	ReclaimAfter int
	// ReclaimStart is the weight a node reclaims at (then doubles per
	// live window). 0 means the default, 0.25.
	ReclaimStart float64
	// MinDelta suppresses weight moves smaller than this, except to or
	// from 0. Zero means no suppression; DefaultPolicy sets 0.1.
	MinDelta float64
	// SlowCap is the weight ceiling while the classifier judges a node
	// Slow or Erratic. 0 means the default, 0.5.
	SlowCap float64
	// ExpectedRate, when positive, degrades a live node's target weight
	// by observed/expected rate when it beats slower than expected. Zero
	// disables rate-based degradation (the default): learned or assumed
	// rate expectations are easily poisoned by catch-up bursts.
	ExpectedRate float64
}

// DefaultPolicy returns the policy the examples and tools run:
// drain after 2 silent windows, reclaim after 2 live ones at 0.25
// doubling, 0.1 minimum delta, 0.5 slow cap, no rate expectation.
func DefaultPolicy() Policy {
	return Policy{DrainAfter: 2, ReclaimAfter: 2, ReclaimStart: 0.25, MinDelta: 0.1, SlowCap: 0.5}
}

// normalized fills zero values with their documented defaults (MinDelta
// and ExpectedRate stay as given: zero is meaningful for both).
func (p Policy) normalized() Policy {
	if p.DrainAfter < 1 {
		p.DrainAfter = 2
	}
	if p.ReclaimAfter < 1 {
		p.ReclaimAfter = 2
	}
	if p.ReclaimStart <= 0 {
		p.ReclaimStart = 0.25
	}
	if p.SlowCap <= 0 {
		p.SlowCap = 0.5
	}
	return p
}

// nodeState is the per-node hysteresis accumulator the policy judges
// against.
type nodeState struct {
	weight  float64 // weight currently applied to the table
	cap     float64 // classifier ceiling (SlowCap while Slow/Erratic)
	silent  int     // consecutive silent windows
	good    int     // consecutive live windows
	ramp    float64 // current reclaim ramp value, 0 when not ramping
	drained bool    // weight hit 0 by drain; reclaim path applies
}

func newNodeState() *nodeState { return &nodeState{cap: 1} }

// judge folds one rollup window into the node's state and returns the
// weight the table should now hold for it. p must be normalized.
func (p Policy) judge(st *nodeState, r observer.Rollup) float64 {
	if r.Silent() {
		st.good = 0
		st.silent++
		if st.silent >= p.DrainAfter || st.weight == 0 {
			st.drained = true
			st.ramp = 0
			return 0
		}
		return st.weight // hysteresis: one bad window holds, never flaps
	}

	// Live window: records delivered, or losses proving publication.
	st.silent = 0
	st.good++
	target := 1.0
	if p.ExpectedRate > 0 {
		if or := r.ObservedRate(); or > 0 && or < p.ExpectedRate {
			target = or / p.ExpectedRate
		}
	}
	if target > st.cap {
		target = st.cap
	}
	if !st.drained {
		st.ramp = 0
		return target
	}
	// Reclaiming from a drain: confirm first, then ramp back.
	if st.good < p.ReclaimAfter {
		return st.weight
	}
	if st.ramp == 0 {
		st.ramp = p.ReclaimStart
	} else {
		st.ramp *= 2
	}
	if st.ramp >= target {
		st.drained, st.ramp = false, 0
		return target
	}
	return st.ramp
}

// judgeStatus folds one classifier judgment into the node's state and
// returns the weight the table should now hold. Flatlined/Dead drain
// immediately; Slow/Erratic set (and Healthy/Fast clear) the SlowCap
// ceiling — upward moves stay owned by the rollup path, so a Healthy
// judgment right after a drain does not skip the reclaim ramp.
func (p Policy) judgeStatus(st *nodeState, s observer.Status) float64 {
	switch s.Health {
	case observer.Flatlined, observer.Dead:
		st.good = 0
		if st.silent < p.DrainAfter {
			st.silent = p.DrainAfter
		}
		st.drained, st.ramp = true, 0
		return 0
	case observer.Slow, observer.Erratic:
		st.cap = p.SlowCap
		if !st.drained && st.weight > st.cap {
			return st.cap
		}
	case observer.Healthy, observer.Fast:
		st.cap = 1
	}
	return st.weight
}
