package hbnet

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/heartbeat"
	"repro/observer"
)

// drainMergedFeed reads the relay's merged feed from zero until want seqs
// (records + missed) are accounted for.
func drainMergedFeed(t *testing.T, r *Relay, want uint64) ([]heartbeat.Record, uint64) {
	t.Helper()
	s, err := r.MergedFeed()(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var recs []heartbeat.Record
	var missed uint64
	deadline := time.Now().Add(10 * time.Second)
	for uint64(len(recs))+missed < want {
		ctx, cancel := context.WithDeadline(context.Background(), deadline)
		b, err := s.Next(ctx)
		cancel()
		if err != nil {
			t.Fatalf("merged feed at %d+%d of %d: %v", len(recs), missed, want, err)
		}
		recs = append(recs, b.Records...)
		missed += b.Missed
	}
	return recs, missed
}

// waitMergedHead polls until the relay's merged head reaches want.
func waitMergedHead(t *testing.T, r *Relay, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for r.MergedHead() < want {
		if time.Now().After(deadline) {
			t.Fatalf("merged head stuck at %d, want %d", r.MergedHead(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// closeTrackStream wraps a stream and records whether the owner released it.
type closeTrackStream struct {
	observer.Stream
	once   sync.Once
	closed chan struct{}
}

func newCloseTrackStream(s observer.Stream) *closeTrackStream {
	return &closeTrackStream{Stream: s, closed: make(chan struct{})}
}

func (c *closeTrackStream) Close() error {
	c.once.Do(func() { close(c.closed) })
	return nil
}

func newTestHB(t *testing.T) *heartbeat.Heartbeat {
	t.Helper()
	hb, err := heartbeat.New(20, heartbeat.WithCapacity(1<<14))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hb.Close() })
	return hb
}

func beatN(hb *heartbeat.Heartbeat, n int) {
	for i := 0; i < n; i++ {
		hb.Beat()
	}
	hb.Flush()
}

// Tentpole: RemoveUpstream while Run is live retires the registration
// completely — pump stopped, already-delivered records kept, stream closed,
// name immediately reusable — and the merged history stays conserved and
// dense across the removal and the re-add.
func TestRelayRemoveUpstream(t *testing.T) {
	relay := NewRelay(WithRollupInterval(10 * time.Millisecond))
	hbA, hbB := newTestHB(t), newTestHB(t)
	streamA := newCloseTrackStream(observer.HeartbeatStream(hbA))
	if err := relay.AddUpstream("a", streamA); err != nil {
		t.Fatal(err)
	}
	if err := relay.AddUpstream("b", observer.HeartbeatStream(hbB)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); relay.Run(ctx) }()
	defer func() { cancel(); <-done; relay.Close() }()

	beatN(hbA, 100)
	beatN(hbB, 100)
	waitMergedHead(t, relay, 200)

	h, err := relay.RemoveUpstream("a")
	if err != nil {
		t.Fatal(err)
	}
	if h.App != "a" || h.Stream != nil {
		t.Fatalf("handoff %+v: want App a and a closed (nil) stream", h)
	}
	select {
	case <-streamA.closed:
	default:
		t.Fatal("removed upstream's stream was not closed")
	}
	if apps := relay.Apps(); !reflect.DeepEqual(apps, []string{"b"}) {
		t.Fatalf("Apps() = %v after removal, want [b]", apps)
	}

	// The name is free again, immediately.
	hbA2 := newTestHB(t)
	if err := relay.AddUpstream("a", observer.HeartbeatStream(hbA2)); err != nil {
		t.Fatalf("re-adding removed name: %v", err)
	}
	beatN(hbA2, 50)
	beatN(hbB, 50)
	waitMergedHead(t, relay, 300)

	recs, missed := drainMergedFeed(t, relay, 300)
	if missed != 0 {
		t.Fatalf("missed %d with ample retention across a removal", missed)
	}
	assertDense(t, recs, 0)
	if len(recs) != 300 {
		t.Fatalf("got %d records, want 300", len(recs))
	}
}

// Satellite: upstream ids are unique per registration life. Before the fix,
// AddUpstream assigned int32(len(r.order)), so removing "a" and re-adding
// it aliased the new registration with "b"'s id in the merged seq space.
func TestRelayRemoveReaddNoIDAlias(t *testing.T) {
	relay := NewRelay(WithRollupInterval(10 * time.Millisecond))
	hb1, hb2, hb3 := newTestHB(t), newTestHB(t), newTestHB(t)
	if err := relay.AddUpstream("a", observer.HeartbeatStream(hb1)); err != nil {
		t.Fatal(err)
	}
	if err := relay.AddUpstream("b", observer.HeartbeatStream(hb2)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); relay.Run(ctx) }()
	defer func() { cancel(); <-done; relay.Close() }()

	beatN(hb1, 10)
	beatN(hb2, 10)
	waitMergedHead(t, relay, 20)
	if _, err := relay.RemoveUpstream("a"); err != nil {
		t.Fatal(err)
	}
	if err := relay.AddUpstream("a", observer.HeartbeatStream(hb3)); err != nil {
		t.Fatal(err)
	}
	beatN(hb3, 10)
	waitMergedHead(t, relay, 30)

	recs, missed := drainMergedFeed(t, relay, 30)
	if missed != 0 {
		t.Fatalf("missed %d", missed)
	}
	perID := map[int32]int{}
	for _, r := range recs {
		perID[r.Producer]++
	}
	// Three registration lives, three distinct ids: 10 records each. The
	// aliasing bug would fold re-added "a" onto id 1 (perID[1] == 20).
	want := map[int32]int{0: 10, 1: 10, 2: 10}
	if !reflect.DeepEqual(perID, want) {
		t.Fatalf("records per producer id = %v, want %v", perID, want)
	}
}

// blockingStream never yields; it exists so a registration can sit idle
// while the test stages relay state by hand.
type blockingStream struct{}

func (blockingStream) Next(ctx context.Context) (observer.Batch, error) {
	<-ctx.Done()
	return observer.Batch{}, ctx.Err()
}

// Satellite: a removed upstream's parked pending batch. A Run shutdown
// parks an in-hand batch in up.pending behind whatever the pump already
// queued in r.events; removing that upstream afterwards must absorb both,
// oldest first — neither resurrecting them out of order nor dropping them.
// The mid-shutdown state is staged directly (the select race in the pump
// makes parking non-deterministic through the public API alone).
func TestRelayRemoveAbsorbsParkedPending(t *testing.T) {
	relay := NewRelay(WithRollupInterval(10 * time.Millisecond))
	if err := relay.AddUpstream("a", blockingStream{}); err != nil {
		t.Fatal(err)
	}
	relay.mu.Lock()
	up := relay.ups["a"]
	relay.mu.Unlock()

	rec := func(nanos int64) heartbeat.Record {
		return heartbeat.Record{Time: time.Unix(0, nanos)}
	}
	queued := observer.Batch{Records: []heartbeat.Record{rec(1), rec(2)}, Count: 2}
	parked := observer.Batch{Records: []heartbeat.Record{rec(3)}, Count: 3}
	// The exact state a cancelled Run leaves: an older batch still queued in
	// the event channel, a newer one parked in pending, no loop consuming.
	relay.events <- relayEvent{up: up, batch: queued}
	relay.mu.Lock()
	up.pending = &parked
	relay.mu.Unlock()

	if _, err := relay.RemoveUpstream("a"); err != nil {
		t.Fatal(err)
	}
	if relay.MergedHead() != 3 {
		t.Fatalf("merged head %d after removal, want 3 (queued + parked)", relay.MergedHead())
	}
	recs, missed := drainMergedFeed(t, relay, 3)
	if missed != 0 {
		t.Fatalf("missed %d", missed)
	}
	for i, want := range []int64{1, 2, 3} {
		if recs[i].Time.UnixNano() != want {
			t.Fatalf("record %d carries marker %d, want %d (out-of-order absorb)", i, recs[i].Time.UnixNano(), want)
		}
	}

	// And a later Run over the freed name must not resurrect anything.
	hb := newTestHB(t)
	if err := relay.AddUpstream("a", observer.HeartbeatStream(hb)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); relay.Run(ctx) }()
	defer func() { cancel(); <-done; relay.Close() }()
	beatN(hb, 5)
	waitMergedHead(t, relay, 8)
	if relay.MergedHead() != 8 {
		t.Fatalf("merged head %d, want 8", relay.MergedHead())
	}
}

// Satellite regression: a terminally rejected upstream is retired through
// the removal path — stream released, name reusable — instead of leaking in
// r.ups forever.
func TestRelayRetiredRejectedNameReusable(t *testing.T) {
	relay := NewRelay(WithRollupInterval(10 * time.Millisecond))
	defer relay.Close()
	if err := relay.AddUpstream("gone", rejectedStream{}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); relay.Run(ctx) }()
	defer func() { cancel(); <-done }()

	// Retirement now frees the name; before the leak fix the registration
	// stayed in Apps() until relay Close.
	deadline := time.Now().Add(10 * time.Second)
	for len(relay.Apps()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("rejected upstream still registered: %v", relay.Apps())
		}
		time.Sleep(2 * time.Millisecond)
	}

	hb := newTestHB(t)
	if err := relay.AddUpstream("gone", observer.HeartbeatStream(hb)); err != nil {
		t.Fatalf("re-adding retired name: %v", err)
	}
	beatN(hb, 20)
	waitMergedHead(t, relay, 20)
}

// Tentpole: cursor-preserving migration of a dialed upstream. The producer
// moves from src to dst mid-stream; each relay sees its half exactly once —
// the two merged heads sum to the producer's total with zero Missed.
func TestRebalanceNoDupNoGap(t *testing.T) {
	hb := newTestHB(t)
	srv := NewServer()
	srv.PublishHeartbeat("app", hb)
	addr := startServer(t, srv)

	src := NewRelay(WithRollupInterval(10 * time.Millisecond))
	dst := NewRelay(WithRollupInterval(10 * time.Millisecond))
	up, err := src.DialUpstream("app", addr, "app")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Relay{src, dst} {
		r := r
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() { defer close(done); r.Run(ctx) }()
		t.Cleanup(func() { cancel(); <-done; r.Close() })
	}

	beatN(hb, 300)
	deadline := time.Now().Add(10 * time.Second)
	for up.Cursor() < 300 {
		if time.Now().After(deadline) {
			t.Fatalf("src upstream stuck at %d", up.Cursor())
		}
		time.Sleep(2 * time.Millisecond)
	}

	c2, err := Rebalance(src, dst, "app", addr, "app")
	if err != nil {
		t.Fatal(err)
	}
	beatN(hb, 300)
	for c2.Cursor() < 600 {
		if time.Now().After(deadline) {
			t.Fatalf("dst upstream stuck at %d", c2.Cursor())
		}
		time.Sleep(2 * time.Millisecond)
	}

	if got := src.MergedHead(); got != 300 {
		t.Fatalf("src merged head %d, want 300 (its half, exactly once)", got)
	}
	if got := dst.MergedHead(); got != 300 {
		t.Fatalf("dst merged head %d, want 300 (no replay, no gap)", got)
	}
	if c2.Missed() != 0 {
		t.Fatalf("handoff gapped: dst client missed %d", c2.Missed())
	}
	if apps := src.Apps(); len(apps) != 0 {
		t.Fatalf("src still tracks %v", apps)
	}
	if apps := dst.Apps(); !reflect.DeepEqual(apps, []string{"app"}) {
		t.Fatalf("dst tracks %v, want [app]", apps)
	}
}

// Tentpole: stream-object migration for upstreams that cannot re-dial. The
// detached stream's internal cursor carries the position, so delivery
// continues on dst exactly where src stopped.
func TestRebalanceStreamNoDupNoGap(t *testing.T) {
	hb := newTestHB(t)
	src := NewRelay(WithRollupInterval(10 * time.Millisecond))
	dst := NewRelay(WithRollupInterval(10 * time.Millisecond))
	if err := src.AddUpstream("a", observer.HeartbeatStream(hb)); err != nil {
		t.Fatal(err)
	}
	for _, r := range []*Relay{src, dst} {
		r := r
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		go func() { defer close(done); r.Run(ctx) }()
		t.Cleanup(func() { cancel(); <-done; r.Close() })
	}

	beatN(hb, 100)
	waitMergedHead(t, src, 100)
	if err := RebalanceStream(src, dst, "a"); err != nil {
		t.Fatal(err)
	}
	beatN(hb, 100)
	waitMergedHead(t, dst, 100)

	if got := src.MergedHead(); got != 100 {
		t.Fatalf("src merged head %d, want 100", got)
	}
	recs, missed := drainMergedFeed(t, dst, 100)
	if missed != 0 || len(recs) != 100 {
		t.Fatalf("dst saw %d records + %d missed, want exactly the second 100", len(recs), missed)
	}
}

// Tentpole: ring-lap shedding is counted, not silent. A subscriber that
// fell behind a small retained window is advanced past the lapped span and
// the skip shows up per-subscriber (ShedCounter) and relay-wide (Shed),
// always inside the Missed the same subscriber observed.
func TestRelayShedOnLap(t *testing.T) {
	relay := NewRelay(WithRollupInterval(10*time.Millisecond), WithMergedRetain(32))
	hb := newTestHB(t)
	if err := relay.AddUpstream("a", observer.HeartbeatStream(hb)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); relay.Run(ctx) }()
	defer func() { cancel(); <-done; relay.Close() }()

	beatN(hb, 100)
	waitMergedHead(t, relay, 100)

	s, err := relay.MergedFeed()(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	nctx, ncancel := context.WithTimeout(context.Background(), 5*time.Second)
	b, err := s.Next(nctx)
	ncancel()
	if err != nil {
		t.Fatal(err)
	}
	// Seqs 1..68 were lapped out of the 32-slot window: delivered 69..100,
	// Missed 68, all 68 attributed to this hop as shed.
	if len(b.Records) != 32 || b.Missed != 68 {
		t.Fatalf("lapped read delivered %d records, missed %d; want 32 and 68", len(b.Records), b.Missed)
	}
	sc, ok := s.(ShedCounter)
	if !ok {
		t.Fatal("merged feed stream does not expose ShedCounter")
	}
	if sc.Shed() != 68 {
		t.Fatalf("subscriber shed %d, want 68", sc.Shed())
	}
	if relay.Shed() != 68 {
		t.Fatalf("relay shed %d, want 68", relay.Shed())
	}
	if sc.Shed() > b.Missed {
		t.Fatalf("shed %d exceeds missed %d: shed must refine Missed", sc.Shed(), b.Missed)
	}

	// The frame path charges identically (the server's zero-copy read).
	fb, _, shed, _, _ := relay.merged.frameSince(0, maxRelayBatch)
	if fb != nil {
		fb.release()
	}
	if shed != 68 {
		t.Fatalf("frameSince shed %d, want 68", shed)
	}
	if relay.Shed() != 136 {
		t.Fatalf("relay shed %d after two lapped reads, want 136", relay.Shed())
	}
}

// Tentpole: the WithShedLag policy sheds before the ring laps — an explicit
// backpressure bound on how far behind a subscriber may trail.
func TestRelayShedLag(t *testing.T) {
	relay := NewRelay(
		WithRollupInterval(10*time.Millisecond),
		WithMergedRetain(1<<12), // ample: only the policy can shed
		WithShedLag(16),
	)
	hb := newTestHB(t)
	if err := relay.AddUpstream("a", observer.HeartbeatStream(hb)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); relay.Run(ctx) }()
	defer func() { cancel(); <-done; relay.Close() }()

	beatN(hb, 100)
	waitMergedHead(t, relay, 100)

	s, err := relay.MergedFeed()(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	nctx, ncancel := context.WithTimeout(context.Background(), 5*time.Second)
	b, err := s.Next(nctx)
	ncancel()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Records) != 16 || b.Missed != 84 {
		t.Fatalf("lag-bounded read delivered %d records, missed %d; want 16 and 84", len(b.Records), b.Missed)
	}
	if got := s.(ShedCounter).Shed(); got != 84 {
		t.Fatalf("subscriber shed %d, want 84", got)
	}
	if relay.Shed() != 84 {
		t.Fatalf("relay shed %d, want 84", relay.Shed())
	}

	// A caught-up subscriber sheds nothing further.
	nctx2, ncancel2 := context.WithTimeout(context.Background(), 100*time.Millisecond)
	_, err = s.Next(nctx2)
	ncancel2()
	if err == nil {
		t.Fatal("idle read returned data")
	}
	if got := s.(ShedCounter).Shed(); got != 84 {
		t.Fatalf("idle read changed shed to %d", got)
	}
}
