package observer_test

import (
	"context"
	"errors"
	"io"
	"path/filepath"
	"testing"
	"time"

	"repro/hbfile"
	"repro/heartbeat"
	"repro/observer"
	"repro/sim"
)

func TestHeartbeatStreamDeltas(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	hb.SetTarget(5, 15)
	beatSteadily(hb, clk, 4, 100*time.Millisecond)

	st := observer.HeartbeatStream(hb)
	b, err := st.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Records) != 4 || b.Count != 4 || b.Window != 10 || !b.TargetSet || b.TargetMin != 5 {
		t.Fatalf("first batch = %+v", b)
	}
	beatSteadily(hb, clk, 2, 100*time.Millisecond)
	b, err = st.Next(context.Background())
	if err != nil || len(b.Records) != 2 || b.Records[0].Seq != 5 {
		t.Fatalf("delta batch = %+v, err %v", b, err)
	}
	// Idle + expired ctx = non-blocking drain outcome.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := st.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("idle err = %v", err)
	}
	// Closed heartbeat ends the stream.
	hb.Close()
	if _, err := st.Next(context.Background()); !errors.Is(err, io.EOF) {
		t.Fatalf("closed err = %v, want io.EOF", err)
	}
}

func TestFileStreamTailsRing(t *testing.T) {
	p := filepath.Join(t.TempDir(), "a.hb")
	w, err := hbfile.Create(p, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk), heartbeat.WithSink(w))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	hb.SetTarget(30, 35)
	beatSteadily(hb, clk, 5, 25*time.Millisecond)

	r, err := hbfile.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := observer.FileStream(r, time.Millisecond)
	b, err := st.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Records) != 5 || b.Count != 5 || !b.TargetSet || b.TargetMin != 30 {
		t.Fatalf("first batch = %+v", b)
	}
	// A blocked Next picks up records the writer lands later.
	got := make(chan observer.Batch, 1)
	go func() {
		nb, err := st.Next(context.Background())
		if err != nil {
			t.Error(err)
		}
		got <- nb
	}()
	time.Sleep(5 * time.Millisecond)
	beatSteadily(hb, clk, 3, 25*time.Millisecond)
	select {
	case nb := <-got:
		if len(nb.Records) == 0 || nb.Records[0].Seq != 6 {
			t.Fatalf("tail batch = %+v", nb)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("file stream never saw the new records")
	}
}

// Regression: resuming a file stream with a cursor from a previous life
// of the producer (the file was recreated, its seqs restarted) used to
// jump the cursor down silently and skip the new life's retained records
// entirely — where the in-process Subscription resync redelivers them.
// The two backends must agree: resynchronize and deliver.
func TestFileStreamFromFutureCursorResynchronizes(t *testing.T) {
	p := filepath.Join(t.TempDir(), "a.hb")
	w, err := hbfile.Create(p, 10, 64)
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk), heartbeat.WithSink(w))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	beatSteadily(hb, clk, 5, 25*time.Millisecond)

	r, err := hbfile.Open(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// The consumer's cursor predates this file's life entirely.
	st := observer.FileStreamFrom(r, time.Millisecond, 100)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for delivered := 0; delivered < 5; {
		b, err := st.Next(ctx)
		if err != nil {
			t.Fatalf("resumed-from-future Next stalled after %d records: %v", delivered, err)
		}
		for _, rec := range b.Records {
			delivered++
			if rec.Seq != uint64(delivered) {
				t.Fatalf("record %d has seq %d: resync skipped or duplicated", delivered, rec.Seq)
			}
		}
		if b.Missed != 0 {
			t.Fatalf("resync counted %d phantom missed records", b.Missed)
		}
	}
}

func TestLogStreamTailsLog(t *testing.T) {
	p := filepath.Join(t.TempDir(), "a.hbl")
	w, err := hbfile.CreateLog(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk), heartbeat.WithSink(w))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	beatSteadily(hb, clk, 4, 10*time.Millisecond)

	r, err := hbfile.OpenLog(p)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := observer.LogStream(r, time.Millisecond)
	b, err := st.Next(context.Background())
	if err != nil || len(b.Records) != 4 || b.Count != 4 {
		t.Fatalf("log batch = %+v, err %v", b, err)
	}
}

func TestPollStreamFallbackDeliversOnlyNewRecords(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(8, heartbeat.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	tr := hb.Thread("w")
	for i := 0; i < 3; i++ {
		clk.Advance(50 * time.Millisecond)
		tr.Beat()
	}
	// ThreadSource has no native stream: StreamOf must fall back to
	// polling yet still deliver each record exactly once.
	st := observer.StreamOf(observer.ThreadSource(tr, 8), time.Millisecond)
	b, err := st.Next(context.Background())
	if err != nil || len(b.Records) != 3 {
		t.Fatalf("fallback batch = %+v, err %v", b, err)
	}
	clk.Advance(50 * time.Millisecond)
	tr.Beat()
	b, err = st.Next(context.Background())
	if err != nil || len(b.Records) != 1 || b.Records[0].Seq != 4 {
		t.Fatalf("fallback delta = %+v, err %v", b, err)
	}
}

func TestPollStreamZeroSeqFallback(t *testing.T) {
	// A hand-rolled Source that never populates Seq (the snapshot API
	// did not require it): the fallback dedups by Count.
	base := time.Unix(0, 0)
	count := uint64(0)
	src := sourceFunc(func(int) (observer.Snapshot, error) {
		recs := make([]heartbeat.Record, count)
		for i := range recs {
			recs[i].Time = base.Add(time.Duration(i) * time.Second)
		}
		return observer.Snapshot{Count: count, Window: 8, Records: recs}, nil
	})
	st := observer.PollStream(src, time.Millisecond)
	count = 3
	b, err := st.Next(context.Background())
	if err != nil || len(b.Records) != 3 {
		t.Fatalf("first batch = %d records, err %v; want 3", len(b.Records), err)
	}
	count = 5
	b, err = st.Next(context.Background())
	if err != nil || len(b.Records) != 2 || b.Count != 5 {
		t.Fatalf("delta batch = %d records (count %d), err %v; want the 2 new ones", len(b.Records), b.Count, err)
	}
}

func TestStreamOfPicksNativeStreams(t *testing.T) {
	hb, _ := heartbeat.New(10)
	defer hb.Close()
	if _, ok := observer.StreamOf(observer.HeartbeatSource(hb), 0).(io.Closer); !ok {
		t.Fatal("StreamOf(HeartbeatSource) did not return the native heartbeat stream")
	}
}

func TestWindowAbsorbTrimAndCachedStats(t *testing.T) {
	w := observer.NewWindow(4)
	base := time.Unix(0, 0)
	mk := func(seq uint64) heartbeat.Record {
		return heartbeat.Record{Seq: seq, Time: base.Add(time.Duration(seq) * 100 * time.Millisecond)}
	}
	w.Absorb(observer.Batch{
		Records: []heartbeat.Record{mk(1), mk(2), mk(3)},
		Count:   3, Window: 10, TargetMin: 5, TargetMax: 15, TargetSet: true,
	})
	w.Absorb(observer.Batch{Records: []heartbeat.Record{mk(4), mk(5), mk(6)}, Count: 6, Window: 10, Missed: 2})
	recs := w.Records()
	if len(recs) != 4 || recs[0].Seq != 3 || recs[3].Seq != 6 {
		t.Fatalf("trimmed window = %+v", recs)
	}
	if w.Count() != 6 || w.Missed() != 2 {
		t.Fatalf("count %d missed %d", w.Count(), w.Missed())
	}
	r, ok := w.RateOver(0)
	if !ok || r.PerSec < 9.99 || r.PerSec > 10.01 {
		t.Fatalf("rate = %+v", r)
	}
	if w.LastBeat() != mk(6).Time {
		t.Fatalf("last beat = %v", w.LastBeat())
	}
	snap := w.Snapshot()
	if snap.Count != 6 || snap.Window != 10 || len(snap.Records) != 4 {
		t.Fatalf("snapshot view = %+v", snap)
	}
}

func TestClassifyWindowMatchesClassify(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	hb.SetTarget(8, 12)
	beatSteadily(hb, clk, 20, 100*time.Millisecond)

	snap, err := observer.HeartbeatSource(hb).Snapshot(0)
	if err != nil {
		t.Fatal(err)
	}
	w := observer.NewWindow(0)
	st := observer.HeartbeatStream(hb)
	b, err := st.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	w.Absorb(b)

	c := &observer.Classifier{Clock: clk}
	fromSnap := c.Classify(snap)
	fromWin := c.ClassifyWindow(w)
	if fromSnap.Health != fromWin.Health || fromSnap.Rate != fromWin.Rate ||
		fromSnap.RateOK != fromWin.RateOK || fromSnap.LastBeat != fromWin.LastBeat {
		t.Fatalf("classify mismatch:\n snapshot %+v\n window   %+v", fromSnap, fromWin)
	}
	if fromWin.Health != observer.Healthy {
		t.Fatalf("health = %v", fromWin.Health)
	}
	// Repeat judgment with no new records: cached stats, same verdict.
	again := c.ClassifyWindow(w)
	if again.Health != fromWin.Health || again.Rate != fromWin.Rate {
		t.Fatalf("cached judgment drifted: %+v vs %+v", again, fromWin)
	}
}

func TestMonitorRunFirstStatusImmediate(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	hb.SetTarget(8, 12)
	beatSteadily(hb, clk, 20, 100*time.Millisecond)
	got := make(chan observer.Status, 1)
	// With an hour-long interval, only the immediate initial judgment can
	// deliver a status within the test deadline.
	m := observer.NewMonitor(observer.HeartbeatSource(hb), time.Hour, func(st observer.Status) {
		select {
		case got <- st:
		default:
		}
	}, observer.WithClassifier(&observer.Classifier{Clock: clk}))
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { m.Run(ctx); close(done) }()
	select {
	case st := <-got:
		if st.Health != observer.Healthy {
			t.Fatalf("first status = %+v", st)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first status waited for the interval instead of firing immediately")
	}
	cancel()
	<-done
}

func TestMonitorRunOnStreamDetectsFlatline(t *testing.T) {
	hb, err := heartbeat.New(4)
	if err != nil {
		t.Fatal(err)
	}
	hb.SetTarget(100, 1000) // expected gap 10ms; flatline after 160ms silence
	for i := 0; i < 8; i++ {
		hb.Beat()
		time.Sleep(2 * time.Millisecond)
	}
	flat := make(chan observer.Status, 1)
	m := observer.NewMonitor(observer.HeartbeatSource(hb), 10*time.Millisecond, func(st observer.Status) {
		if st.Health == observer.Flatlined {
			select {
			case flat <- st:
			default:
			}
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() { m.Run(ctx); close(done) }()
	select {
	case <-flat: // beats stopped; the idle ticks alone must reveal it
	case <-time.After(8 * time.Second):
		t.Fatal("flatline never detected on idle ticks")
	}
	cancel()
	<-done
}
