package parsec

import (
	"testing"

	"repro/heartbeat"
)

func TestRunParallelPopulatesLocalAndGlobal(t *testing.T) {
	hb, err := heartbeat.New(10, heartbeat.WithCapacity(1<<12))
	if err != nil {
		t.Fatal(err)
	}
	const workers, units = 4, 30
	cs := RunParallel(func() Kernel { return NewFerret() }, hb, workers, units, 1)
	if cs == 0 {
		t.Error("zero combined checksum is suspicious")
	}
	// ferret beats every unit: each worker contributes `units` local beats
	// and the same number of attributed global beats.
	if hb.Count() != workers*units {
		t.Fatalf("global Count = %d, want %d", hb.Count(), workers*units)
	}
	threads := hb.Threads()
	if len(threads) != workers {
		t.Fatalf("registered threads = %d, want %d", len(threads), workers)
	}
	for _, tr := range threads {
		if tr.Count() != units {
			t.Fatalf("thread %q local Count = %d, want %d", tr.Name(), tr.Count(), units)
		}
	}
	// Every global record is attributed to some registered thread.
	for _, rec := range hb.History(1 << 12) {
		if rec.Producer < 1 || rec.Producer > int32(workers) {
			t.Fatalf("unattributed global record: %+v", rec)
		}
	}
}

func TestRunParallelBatchedKernel(t *testing.T) {
	hb, err := heartbeat.New(10)
	if err != nil {
		t.Fatal(err)
	}
	// canneal beats every 1875 moves; give each worker 2 beats' worth.
	RunParallel(func() Kernel { return NewCanneal() }, hb, 2, 3750, 7)
	if hb.Count() != 4 {
		t.Fatalf("global Count = %d, want 4 (2 workers x 2 batches)", hb.Count())
	}
}

func TestRunParallelClampsWorkers(t *testing.T) {
	hb, err := heartbeat.New(10)
	if err != nil {
		t.Fatal(err)
	}
	RunParallel(func() Kernel { return NewSwaptions() }, hb, 0, 5, 1)
	if hb.Count() != 5 {
		t.Fatalf("Count = %d, want 5 from single clamped worker", hb.Count())
	}
}
