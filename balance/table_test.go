package balance

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

func eightNodes(t *testing.T) *Table {
	t.Helper()
	tb := New()
	for i := 0; i < 8; i++ {
		tb.Set(fmt.Sprintf("node%d", i), 1)
	}
	return tb
}

// pickMap snapshots the owner of a fixed key population.
func pickMap(tb *Table, keys int) map[uint64]string {
	m := make(map[uint64]string, keys)
	for k := 0; k < keys; k++ {
		n, ok := tb.Pick(uint64(k))
		if ok {
			m[uint64(k)] = n
		} else {
			m[uint64(k)] = ""
		}
	}
	return m
}

func TestPickEmptyTable(t *testing.T) {
	tb := New()
	if n, ok := tb.Pick(42); ok || n != "" {
		t.Fatalf("empty table picked %q", n)
	}
	tb.Set("a", 0)
	if _, ok := tb.Pick(42); ok {
		t.Fatalf("all-drained table still picked a node")
	}
}

func TestPickDistribution(t *testing.T) {
	tb := eightNodes(t)
	counts := make(map[string]int)
	const keys = 1 << 16
	for k := 0; k < keys; k++ {
		n, ok := tb.Pick(uint64(k))
		if !ok {
			t.Fatalf("no node for key %d", k)
		}
		counts[n]++
	}
	if len(counts) != 8 {
		t.Fatalf("only %d of 8 nodes own keys: %v", len(counts), counts)
	}
	for n, c := range counts {
		frac := float64(c) / keys
		// Key share tracks bucket share; with 1024 buckets the per-node
		// share is 1/8 ± a few percent.
		if frac < 0.08 || frac > 0.17 {
			t.Errorf("%s owns %.3f of keys, want ≈0.125", n, frac)
		}
	}
}

func TestRemoveRemapsMinimally(t *testing.T) {
	tb := eightNodes(t)
	const keys = 1 << 14
	before := pickMap(tb, keys)

	sw := tb.Remove("node3")
	if sw.Old != 1 || sw.New != 0 {
		t.Fatalf("swap weights = %v -> %v, want 1 -> 0", sw.Old, sw.New)
	}
	wantShare := 1.0 / 8
	if math.Abs(sw.Share-wantShare) > 1e-9 {
		t.Fatalf("swap share = %v, want %v", sw.Share, wantShare)
	}

	after := pickMap(tb, keys)
	moved := 0
	for k, was := range before {
		now := after[k]
		if was == now {
			continue
		}
		moved++
		// Minimal disruption: only keys the removed node owned may move.
		if was != "node3" {
			t.Fatalf("key %d moved %s -> %s though node3 was removed", k, was, now)
		}
	}
	frac := float64(moved) / keys
	if frac > 1.5*wantShare {
		t.Errorf("removing 1 of 8 nodes remapped %.3f of keys, want ≤ %.3f", frac, 1.5*wantShare)
	}
	if frac < 0.05 {
		t.Errorf("removing 1 of 8 nodes remapped only %.3f of keys — suspiciously low", frac)
	}
	// The swap's own accounting should agree with the measured movement.
	if math.Abs(sw.Frac()-frac) > 0.02 {
		t.Errorf("swap reports frac %.3f, measured %.3f", sw.Frac(), frac)
	}
}

func TestWeightChangeMovesOnlyChangedNode(t *testing.T) {
	tb := eightNodes(t)
	const keys = 1 << 14
	before := pickMap(tb, keys)

	tb.Set("node5", 0.5)
	mid := pickMap(tb, keys)
	for k, was := range before {
		if now := mid[k]; was != now && was != "node5" {
			t.Fatalf("key %d moved %s -> %s on node5's weight change", k, was, now)
		}
	}

	tb.Set("node5", 1)
	after := pickMap(tb, keys)
	for k, was := range mid {
		if now := after[k]; was != now && now != "node5" {
			t.Fatalf("key %d moved %s -> %s on node5's weight restore", k, was, now)
		}
	}
}

func TestReclaimRestoresIdenticalMapping(t *testing.T) {
	tb := eightNodes(t)
	const keys = 1 << 14
	before := pickMap(tb, keys)

	drain := tb.Set("node2", 0)
	if drain.Remapped == 0 {
		t.Fatalf("draining node2 moved nothing")
	}
	restore := tb.Set("node2", 1)
	if restore.Remapped != drain.Remapped {
		t.Errorf("restore moved %d buckets, drain moved %d — want identical", restore.Remapped, drain.Remapped)
	}
	after := pickMap(tb, keys)
	for k, was := range before {
		if now := after[k]; was != now {
			t.Fatalf("key %d maps to %s after reclaim, was %s — reclaim must restore the exact assignment", k, now, was)
		}
	}
}

func TestRemoveThenReaddRestoresMapping(t *testing.T) {
	tb := eightNodes(t)
	const keys = 1 << 13
	before := pickMap(tb, keys)
	tb.Remove("node6")
	tb.Set("node6", 1)
	after := pickMap(tb, keys)
	for k, was := range before {
		if now := after[k]; was != now {
			t.Fatalf("key %d maps to %s after remove+re-add, was %s", k, now, was)
		}
	}
}

func TestPickZeroAlloc(t *testing.T) {
	tb := eightNodes(t)
	allocs := testing.AllocsPerRun(1000, func() {
		if _, ok := tb.Pick(12345); !ok {
			t.Fatal("pick failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("Pick allocates %v/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		if _, ok := tb.PickString("/api/v1/things/42"); !ok {
			t.Fatal("pick failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("PickString allocates %v/op, want 0", allocs)
	}
}

func TestPickStringStable(t *testing.T) {
	tb := eightNodes(t)
	n1, _ := tb.PickString("session-abcdef")
	tb.Set("other", 0.3) // unrelated membership change
	n2, _ := tb.PickString("session-abcdef")
	if n1 != n2 && n2 != "other" {
		t.Fatalf("key moved %s -> %s on an unrelated node's admission", n1, n2)
	}
}

func TestSwapShareAccounting(t *testing.T) {
	tb := New()
	sw := tb.Set("only", 1)
	if sw.Share != 1 {
		t.Errorf("first node's share = %v, want 1 (the whole key space)", sw.Share)
	}
	if sw.Frac() != 1 {
		t.Errorf("first node's frac = %v, want 1", sw.Frac())
	}
	tb.Set("second", 1)
	sw = tb.Set("second", 0.5)
	// |Δ| / max(before=2, after=1.5) = 0.5/2.
	if math.Abs(sw.Share-0.25) > 1e-9 {
		t.Errorf("share = %v, want 0.25", sw.Share)
	}
}

// TestConcurrentPickDuringSwaps is the -race stress for the COW contract:
// readers hammer Pick while a writer churns weights and membership; every
// pick must return a name that was a member at some point in the churn
// set, and the race detector must stay silent.
func TestConcurrentPickDuringSwaps(t *testing.T) {
	tb := New(WithBuckets(256))
	names := []string{"a", "b", "c", "d", "e"}
	valid := map[string]bool{"": true}
	for _, n := range names {
		tb.Set(n, 1)
		valid[n] = true
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			k := seed
			for !stop.Load() {
				k += 0x9E3779B97F4A7C15
				n, ok := tb.Pick(k)
				if ok && !valid[n] {
					select {
					case errs <- n:
					default:
					}
					return
				}
			}
		}(uint64(g))
	}

	for round := 0; round < 2000; round++ {
		n := names[round%len(names)]
		switch round % 4 {
		case 0:
			tb.Set(n, 0) // drain
		case 1:
			tb.Set(n, 1) // reclaim
		case 2:
			tb.Set(n, 0.5)
		case 3:
			tb.Remove(n)
			tb.Set(n, 1)
		}
	}
	stop.Store(true)
	wg.Wait()
	select {
	case n := <-errs:
		t.Fatalf("Pick returned %q, never a member", n)
	default:
	}
}
