// Package repro is a Go reproduction of "Application Heartbeats for
// Software Performance and Health" (Hoffmann, Eastep, Santambrogio,
// Miller, Agarwal — MIT CSAIL, PPoPP 2010).
//
// The library lives in the subpackages:
//
//   - heartbeat: the Application Heartbeats API (the paper's contribution),
//     with a sharded lock-free beat hot path — per-thread single-producer
//     rings merged by a batched aggregator, a single atomic store per beat
//     in the steady state — and cursor-based consumers (ReadSince,
//     Subscribe) that read each record exactly once
//   - heartbeat/compat: Table-1-shaped wrappers for C-reference parity
//   - hbfile: the file-backed ring for cross-process observation, with
//     incremental readers (an idle observer tick is one 8-byte read)
//   - hbnet: the network backend — heartbeat streaming over TCP with
//     cursor resume, so observers on other machines consume the same
//     Streams (the third backend next to in-process and hbfile) — and the
//     hierarchical fan-in tier (Relay): many producers merged into one
//     feed plus downsampled per-app rollups, composing into trees so one
//     monitor watches a fleet through one connection
//   - observer: external observation as incremental Streams — Monitor for
//     one application, Hub to multiplex many named applications into one
//     loop, RollupWindow/Downsampler to reduce streams to per-interval
//     summaries — plus health classification; the old snapshot Source
//     remains as a compat shim (see observer.StreamOf)
//   - control: adaptation policies (threshold stepper, PI, quality ladder)
//   - scheduler: heart-rate-driven core allocation, deciding from streams
//   - sim: the deterministic simulated multicore machine
//
// See README.md for a tour and ARCHITECTURE.md for the layered picture,
// the cursor/Missed delivery contract, and how to choose among the four
// observation topologies. The benchmarks in bench_test.go regenerate the
// paper's tables and figures under go test -bench and ablate the main
// design choices; BenchmarkPollVsStream records the snapshot-polling vs
// cursor-streaming consumer cost (make bench-compare).
package repro
