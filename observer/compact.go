package observer

import (
	"time"

	"repro/heartbeat"
)

// RollupCompactor merges already-downsampled windows — the rollups a relay
// receives from its children — into one window per application, which is
// what keeps a relay tree's root at O(apps) state however many producers
// beat underneath: the leaves reduce raw records to per-app rollups
// (Downsampler), and every interior node reduces its children's rollups
// with a compactor instead of re-tracking producers. It is the rollup
// counterpart of RollupWindow: constant state per app, absorbed windows
// folded in, Flush emits and resets.
//
// The count-conserving fields — Records and Missed — are pure sums, so
// compaction preserves the conservation identity exactly: over any span,
// the Records+Missed a compacted feed emits equals the Records+Missed
// absorbed from the children, which equals the raw records+losses
// underneath (downsampling never hides loss, however deep the tree). The
// descriptive fields are summaries of summaries: Min/MaxInterval take the
// extremes across children, MeanInterval and Rate are record-weighted
// means, and Count is the largest advertised cumulative count (exact when
// each app reaches the compactor through one child, as in a tree where an
// app lives on one leaf).
//
// RollupCompactor is not safe for concurrent use; the relay loop owns it.
type RollupCompactor struct {
	apps  map[string]*compactWindow
	order []string
}

type compactWindow struct {
	records uint64
	missed  uint64
	count   uint64 // cumulative; survives Flush like RollupWindow's
	windows uint64 // source windows folded in (silent ones included)

	minIv, maxIv time.Duration
	ivWeighted   float64 // Σ MeanInterval_i * Records_i, seconds
	ivRecords    uint64
	rateWeighted float64 // Σ ObservedRate_i * Records_i
	rateRecords  uint64
}

// NewRollupCompactor returns an empty compactor; applications register
// lazily on first Absorb (or explicitly with Track).
func NewRollupCompactor() *RollupCompactor {
	return &RollupCompactor{apps: make(map[string]*compactWindow)}
}

// Track registers app so Flush reports it even before (or without) any
// absorbed windows — parity with Downsampler.Track: a silent child still
// shows up, as silence.
func (c *RollupCompactor) Track(app string) {
	if _, ok := c.apps[app]; !ok {
		c.apps[app] = &compactWindow{}
		c.order = append(c.order, app)
	}
}

// Absorb folds one child window into its app's current compaction window.
func (c *RollupCompactor) Absorb(r Rollup) {
	c.Track(r.App)
	w := c.apps[r.App]
	w.records += r.Records
	w.missed += r.Missed
	w.windows++
	if r.Count > w.count {
		w.count = r.Count
	}
	if r.MinInterval > 0 && (w.minIv == 0 || r.MinInterval < w.minIv) {
		w.minIv = r.MinInterval
	}
	if r.MaxInterval > w.maxIv {
		w.maxIv = r.MaxInterval
	}
	if r.MeanInterval > 0 && r.Records > 0 {
		w.ivWeighted += r.MeanInterval.Seconds() * float64(r.Records)
		w.ivRecords += r.Records
	}
	if rate := r.ObservedRate(); rate > 0 && r.Records > 0 {
		w.rateWeighted += rate * float64(r.Records)
		w.rateRecords += r.Records
	}
}

// Flush emits one compacted Rollup per tracked application for the window
// [start, end], in registration order, and resets every window's
// per-interval state (cumulative Count persists).
func (c *RollupCompactor) Flush(start, end time.Time) []Rollup {
	if len(c.order) == 0 {
		return nil
	}
	out := make([]Rollup, 0, len(c.order))
	for _, app := range c.order {
		w := c.apps[app]
		r := Rollup{
			App:     app,
			Start:   start,
			End:     end,
			Records: w.records,
			Missed:  w.missed,
			Count:   w.count,
		}
		if w.rateRecords > 0 {
			r.Rate = heartbeat.Rate{
				PerSec: w.rateWeighted / float64(w.rateRecords),
				Beats:  int(w.records),
			}
			r.RateOK = true
		}
		r.MinInterval, r.MaxInterval = w.minIv, w.maxIv
		if w.ivRecords > 0 {
			r.MeanInterval = time.Duration(w.ivWeighted / float64(w.ivRecords) * float64(time.Second))
		}
		out = append(out, r)
		*w = compactWindow{count: w.count}
	}
	return out
}

// Apps returns the tracked application names in registration order — at a
// relay-tree root, the fleet's applications, however many producers feed
// them.
func (c *RollupCompactor) Apps() []string {
	return append([]string(nil), c.order...)
}
