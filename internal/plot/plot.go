// Package plot renders experiment results as CSV files and quick ASCII
// charts, so every table and figure of the paper can be regenerated and
// inspected from the terminal.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a rectangular result with string cells (Table 2 mixes text and
// numbers).
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// WriteCSV writes the table in CSV form.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, csvLine(t.Header)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, csvLine(row)); err != nil {
			return err
		}
	}
	return nil
}

func csvLine(cells []string) string {
	quoted := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
		}
		quoted[i] = c
	}
	return strings.Join(quoted, ",")
}

// Render writes an aligned text rendering.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is a figure: one x axis and one or more named y columns.
type Series struct {
	Title  string
	XLabel string
	Cols   []string
	X      []float64
	Y      [][]float64 // Y[c][i] pairs with X[i]
}

// Add appends one x position with one value per column.
func (s *Series) Add(x float64, ys ...float64) {
	if len(ys) != len(s.Cols) {
		panic(fmt.Sprintf("plot: %d values for %d columns", len(ys), len(s.Cols)))
	}
	if s.Y == nil {
		s.Y = make([][]float64, len(s.Cols))
	}
	s.X = append(s.X, x)
	for c, v := range ys {
		s.Y[c] = append(s.Y[c], v)
	}
}

// WriteCSV writes x plus all columns.
func (s *Series) WriteCSV(w io.Writer) error {
	header := append([]string{s.XLabel}, s.Cols...)
	if _, err := fmt.Fprintln(w, csvLine(header)); err != nil {
		return err
	}
	for i := range s.X {
		cells := make([]string, 0, len(s.Cols)+1)
		cells = append(cells, trimFloat(s.X[i]))
		for c := range s.Cols {
			cells = append(cells, trimFloat(s.Y[c][i]))
		}
		if _, err := fmt.Fprintln(w, csvLine(cells)); err != nil {
			return err
		}
	}
	return nil
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.4f", v)
}

var chartMarks = []byte{'*', '+', 'o', 'x', '#', '@'}

// Chart draws all columns on one ASCII grid of the given size.
func (s *Series) Chart(w io.Writer, width, height int) {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	if len(s.X) == 0 {
		fmt.Fprintf(w, "%s: (no data)\n", s.Title)
		return
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, col := range s.Y {
		for _, v := range col {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if lo > hi { // all values invalid
		lo, hi = 0, 1
	}
	if lo == hi {
		lo, hi = lo-1, hi+1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	xmin, xmax := s.X[0], s.X[len(s.X)-1]
	if xmin == xmax {
		xmax = xmin + 1
	}
	for c := len(s.Y) - 1; c >= 0; c-- { // first column drawn last (on top)
		mark := chartMarks[c%len(chartMarks)]
		for i, v := range s.Y[c] {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((v-lo)/(hi-lo)*float64(height-1))
			grid[row][col] = mark
		}
	}
	if s.Title != "" {
		fmt.Fprintln(w, s.Title)
	}
	for r, rowBytes := range grid {
		val := hi - (hi-lo)*float64(r)/float64(height-1)
		fmt.Fprintf(w, "%10.2f |%s\n", val, string(rowBytes))
	}
	fmt.Fprintf(w, "%10s +%s\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "%10s  %-*s%s\n", "", width-len(trimFloat(xmax)), trimFloat(xmin)+" "+s.XLabel, trimFloat(xmax))
	legend := make([]string, len(s.Cols))
	for c, name := range s.Cols {
		legend[c] = fmt.Sprintf("%c=%s", chartMarks[c%len(chartMarks)], name)
	}
	fmt.Fprintf(w, "%10s  %s\n", "", strings.Join(legend, "  "))
}
