package repro

// End-to-end integration on the real wall clock — no simulated machine:
// an application goroutine beats through a file-backed sink while doing
// real work; an external monitor classifies its health through the file;
// a watchdog catches a hang and the application "restarts". This is the
// complete Figure 1(b) loop running live.

import (
	"math/rand"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/hbfile"
	"repro/heartbeat"
	"repro/internal/parsec"
	"repro/observer"
)

func TestEndToEndLiveMonitoring(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock integration test")
	}
	path := filepath.Join(t.TempDir(), "live.hb")
	w, err := hbfile.Create(path, 10, 1024)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := heartbeat.New(10, heartbeat.WithSink(w))
	if err != nil {
		t.Fatal(err)
	}
	defer hb.Close()
	if err := hb.SetTarget(20, 100000); err != nil {
		t.Fatal(err)
	}

	// The application: real Black-Scholes batches, a beat per batch,
	// hanging when told to.
	var hung atomic.Bool
	stop := make(chan struct{})
	appDone := make(chan struct{})
	go func() {
		defer close(appDone)
		k := parsec.NewBlackscholes()
		rng := rand.New(rand.NewSource(1))
		var sink uint64
		for {
			select {
			case <-stop:
				_ = sink
				return
			default:
			}
			if hung.Load() {
				time.Sleep(5 * time.Millisecond)
				continue
			}
			for i := 0; i < 300; i++ {
				cs, _ := k.DoUnit(rng)
				sink ^= cs
			}
			hb.Beat()
		}
	}()
	defer func() { close(stop); <-appDone }()

	// The observer: a separate reader over the same file.
	r, err := hbfile.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	classifier := &observer.Classifier{FlatlineFactor: 8, Epoch: time.Now()}
	source := observer.FileSource(r)
	poll := func() observer.Status {
		snap, err := source.Snapshot(0)
		if err != nil {
			t.Fatal(err)
		}
		return classifier.Classify(snap)
	}

	// Phase 1: the application must be judged alive and beating.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := poll()
		if st.RateOK && st.Health == observer.Healthy || st.Health == observer.Fast {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("application never judged healthy: %+v", poll())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Phase 2: hang the application; the watchdog must fire.
	var restarts atomic.Int32
	dog := &observer.Watchdog{Threshold: 2, OnRestart: func(observer.Status) {
		restarts.Add(1)
		hung.Store(false) // the "restart": resume beating
	}}
	hung.Store(true)
	deadline = time.Now().Add(10 * time.Second)
	for restarts.Load() == 0 {
		dog.Observe(poll())
		if time.Now().After(deadline) {
			t.Fatalf("watchdog never fired; last status %+v", poll())
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Phase 3: after the restart the application recovers.
	deadline = time.Now().Add(5 * time.Second)
	for {
		st := poll()
		if st.Health == observer.Healthy || st.Health == observer.Fast {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("application never recovered: %+v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := hb.SinkErr(); err != nil {
		t.Fatal(err)
	}
}
