// Command hbmon watches a heartbeat ring or log file — or a remote hbnet
// feed — and reports the observed application's heart rate, goals, and
// health: the system-administration use of §2.3 (detect hangs, watch
// program phases, diagnose performance in the field) without touching the
// application, now across machines.
//
// Usage:
//
//	hbmon -file app.hb [-interval 500ms] [-window N] [-count N] [-follow]
//	hbmon -file app.hb -listen :9999 [-app NAME]     # relay the file over TCP
//	hbmon -shm /dev/shm/app.shm [-listen :9999]      # watch a shared-memory region
//	hbmon -connect HOST:9999 [-app NAME]             # watch a remote feed
//	hbmon -connect HOST:9999 -rollup [-app NAME]     # watch a rollup feed
//	hbmon -connect HOST:9999 -rollup -balance        # ...and print routing swaps
//	hbmon -relay -listen :9999 \
//	      -upstream a=host1:9999/app -upstream-file b=/var/run/b.hb
//
// The default mode polls a full snapshot every interval. With -follow,
// hbmon tails the file incrementally: each tick reads only the records
// published since the previous one (an idle tick is a single cursor
// read), reports how many new beats arrived, and flags records lost to
// ring overwrite. The tail survives the file being deleted and recreated
// by a restarted producer (the reader reopens on inode change).
//
// With -shm, hbmon watches a shared-memory heartbeat region (hbshm)
// instead of a file: the same incremental tail as -follow, but an idle
// tick is a single atomic load from the mapping — no syscalls at all.
// Combined with -listen, hbmon exports the region as an hbnet feed, which
// is the paper's local/global split end to end: the application publishes
// into shared memory at store cost, and one monitor bridges it onto the
// network for everyone else.
//
// With -listen, hbmon additionally serves the file as an hbnet feed so
// observers on other machines can subscribe to it — the relay case: the
// application only writes a local file, hbmon exports it. With -connect,
// hbmon is such a remote observer: it streams the named feed (always
// incremental, like -follow) and reports identically, including records
// missed across connection outages. The balance of the reporting flags
// applies to every mode. Each line reports: beat count, new beats this
// tick (incremental modes), heart rate over the window, the advertised
// target range, and the health classification (healthy / slow / fast /
// erratic / flatlined / dead).
//
// With -relay, hbmon is a hierarchical fan-in node (hbnet.Relay): it
// subscribes to every -upstream (a remote hbnet feed, NAME=ADDR/FEED) and
// -upstream-file (a local heartbeat file, NAME=PATH), merges them, and
// serves two feeds on -listen — the raw merged stream (-merged-feed,
// default "merged") and per-app downsampled rollups every
// -rollup-interval (-rollup-feed, default "rollup"). Relays compose:
// point an -upstream at another relay's merged feed and a single monitor
// can watch thousands of producers through one connection. Each rollup
// interval, the relay prints one line per app: records, rate, and
// losses. With -connect -rollup, hbmon subscribes to such a rollup feed
// and prints the same lines from the consumer side, each carrying the
// health weight a balance.Policy derives from the window evidence — the
// admission weight a load balancer watching this feed would give the
// app. Adding -balance drives a full balance.Updater from the feed and
// additionally prints every routing-table swap (drains, reclaim ramps)
// as it happens: the actuation layer's view of the fleet, from nothing
// but heartbeats.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"time"

	"repro/balance"
	"repro/hbfile"
	"repro/hbnet"
	"repro/hbshm"
	"repro/observer"
)

// multiFlag collects a repeatable -flag value.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }

func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	path := flag.String("file", "", "heartbeat ring or log file to watch")
	shm := flag.String("shm", "", "shared-memory heartbeat region to watch (hbshm)")
	connect := flag.String("connect", "", "watch a remote hbnet feed at this address instead of a file")
	listen := flag.String("listen", "", "serve an hbnet feed on this address (with -file/-shm: relay it; with -relay: serve the merged and rollup feeds)")
	app := flag.String("app", "app", "feed name to serve (-listen) or subscribe to (-connect)")
	interval := flag.Duration("interval", 500*time.Millisecond, "reporting interval")
	window := flag.Int("window", 0, "rate window in beats (0 = file default)")
	count := flag.Int("count", 0, "stop after this many reports (0 = forever)")
	follow := flag.Bool("follow", false, "tail the file incrementally instead of re-reading the window each poll")
	rollup := flag.Bool("rollup", false, "with -connect: the feed is a rollup feed; print per-app rollup lines")
	balanceSwaps := flag.Bool("balance", false, "with -connect -rollup: drive a balance.Updater from the feed and print routing-table swaps")
	relay := flag.Bool("relay", false, "run as a fan-in relay node (requires -listen and at least one -upstream/-upstream-file)")
	var upstreams, upstreamFiles multiFlag
	flag.Var(&upstreams, "upstream", "relay upstream, NAME=ADDR/FEED (repeatable)")
	flag.Var(&upstreamFiles, "upstream-file", "relay upstream heartbeat file, NAME=PATH (repeatable)")
	mergedFeed := flag.String("merged-feed", "merged", "feed name for the relay's raw merged stream (empty = don't publish)")
	rollupFeed := flag.String("rollup-feed", "rollup", "feed name for the relay's rollup stream (empty = don't publish)")
	rollupInterval := flag.Duration("rollup-interval", time.Second, "relay downsample window length")
	flag.Parse()

	if *relay {
		runRelay(*listen, upstreams, upstreamFiles, *mergedFeed, *rollupFeed, *rollupInterval, *interval)
		return
	}
	sources := 0
	for _, set := range []bool{*path != "", *shm != "", *connect != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		fmt.Fprintln(os.Stderr, "hbmon: exactly one of -file, -shm, or -connect is required")
		flag.Usage()
		os.Exit(2)
	}
	if *listen != "" && *connect != "" {
		fmt.Fprintln(os.Stderr, "hbmon: -listen relays a local source; it requires -file or -shm (or -relay)")
		os.Exit(2)
	}

	classifier := &observer.Classifier{Window: *window, Epoch: time.Now()} //hbvet:allow wallclock -- live monitor: rate epochs are real wall time by definition

	if *connect != "" {
		if *rollup {
			c, err := hbnet.DialRollup(*connect, *app)
			if err != nil {
				fmt.Fprintln(os.Stderr, "hbmon:", err)
				os.Exit(1)
			}
			defer c.Close()
			fmt.Printf("watching remote rollup feed %q at %s\n", *app, *connect)
			runRollups(c, *count, *balanceSwaps)
			return
		}
		c, err := hbnet.Dial(*connect, *app)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbmon:", err)
			os.Exit(1)
		}
		defer c.Close()
		fmt.Printf("watching remote feed %q at %s\n", *app, *connect)
		runFollow(c, classifier, *interval, *count)
		return
	}

	if *shm != "" {
		r, err := hbshm.Open(*shm)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbmon:", err)
			os.Exit(1)
		}
		fmt.Printf("watching shared-memory region %s (window %d, capacity %d)\n", *shm, r.Window(), r.Capacity())
		if *listen != "" {
			serveFeed(*listen, *app, shmFeed(*shm, *interval/10))
		}
		s := hbshm.StreamFrom(r, *interval/10, 0, nil)
		defer s.Close()
		runFollow(s, classifier, *interval, *count)
		return
	}

	// Accept either file variant: the bounded ring or the append-only log.
	var (
		source      observer.Source
		fileWindow  int
		closeReader func() error
	)
	if r, err := hbfile.Open(*path); err == nil {
		closeReader = r.Close
		fmt.Printf("watching ring %s (pid %d, window %d, capacity %d)\n", *path, r.PID(), r.Window(), r.Capacity())
		source = observer.FileSource(r)
		fileWindow = r.Window()
	} else if lr, lerr := hbfile.OpenLog(*path); lerr == nil {
		closeReader = lr.Close
		fmt.Printf("watching log %s (window %d, full history)\n", *path, lr.Window())
		source = observer.LogSource(lr)
		fileWindow = lr.Window()
	} else {
		// Neither variant opened: show both failures — the ring error
		// alone would hide why a log file was rejected.
		fmt.Fprintln(os.Stderr, "hbmon: not a heartbeat ring:", err)
		fmt.Fprintln(os.Stderr, "hbmon: not a heartbeat log:", lerr)
		os.Exit(1)
	}

	if *listen != "" {
		// Each subscriber opens its own reader of the file, so the relay
		// and the local report never share a cursor.
		serveFeed(*listen, *app, hbnet.FileFeed(*path, *interval/10))
	}

	if *follow {
		// The banner reader's job is done; holding it open would pin the
		// deleted inode across the very producer restart the follow
		// stream exists to survive.
		closeReader()
		// The live tail reopens on inode change, so a producer that
		// restarts and recreates its file resumes instead of flatlining.
		fs, err := observer.FollowFile(*path, *interval/10)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbmon:", err)
			os.Exit(1)
		}
		runFollow(fs, classifier, *interval, *count)
		return
	}

	defer closeReader()

	maxRecords := *window
	if maxRecords <= 0 {
		maxRecords = fileWindow
	}
	for polls := 0; *count == 0 || polls < *count; polls++ {
		snap, err := source.Snapshot(maxRecords)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbmon:", err)
			os.Exit(1)
		}
		report(classifier.Classify(snap), -1, 0)
		time.Sleep(*interval) //hbvet:allow wallclock -- live monitor poll cadence; hbmon has no virtual mode
	}
}

// serveFeed exports a local source as an hbnet feed alongside the local
// report. Binding synchronously makes a bad address fail the command
// outright; once serving, a relay failure only warns — the local monitor
// keeps reporting.
func serveFeed(listen, app string, feed hbnet.Feed) {
	srv := hbnet.NewServer()
	if err := srv.Publish(app, feed); err != nil {
		fmt.Fprintln(os.Stderr, "hbmon:", err)
		os.Exit(1)
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hbmon:", err)
		os.Exit(1)
	}
	go func() {
		if err := srv.Serve(l); err != nil {
			fmt.Fprintln(os.Stderr, "hbmon: relay stopped:", err)
		}
	}()
	fmt.Printf("serving feed %q on %s\n", app, l.Addr())
}

// shmFeed adapts a shared-memory region to an hbnet feed: each subscriber
// maps its own reader, so remote cursors never interfere with each other
// or with the local report (parity with hbnet.FileFeed).
func shmFeed(path string, poll time.Duration) hbnet.Feed {
	return func(ctx context.Context, since uint64) (observer.Stream, error) {
		r, err := hbshm.Open(path)
		if err != nil {
			return nil, err
		}
		return hbshm.StreamFrom(r, poll, since, nil), nil
	}
}

// runFollow is the incremental mode shared by -follow and -connect:
// absorb new records as they land, judge and report every interval.
func runFollow(stream observer.Stream, classifier *observer.Classifier, interval time.Duration, count int) {
	win := observer.NewWindow(classifier.Window)
	ctx := context.Background()
	var lastCount, lastMissed uint64
	for reports := 0; count == 0 || reports < count; reports++ {
		if _, err := observer.CollectInto(ctx, stream, win, time.Now().Add(interval)); err != nil { //hbvet:allow wallclock -- live monitor batch deadline; hbmon has no virtual mode
			fmt.Fprintln(os.Stderr, "hbmon:", err)
			os.Exit(1)
		}
		st := classifier.ClassifyWindow(win)
		delta := int64(st.Count) - int64(lastCount)
		if delta < 0 {
			delta = 0 // the file was recreated under us
		}
		report(st, delta, win.Missed()-lastMissed)
		lastCount, lastMissed = st.Count, win.Missed()
	}
}

// runRelay runs hbmon as a fan-in relay node: merge every upstream, serve
// the merged and rollup feeds, and print one rollup line per app per
// downsample window.
func runRelay(listen string, upstreams, upstreamFiles []string, mergedFeed, rollupFeed string, rollupInterval, poll time.Duration) {
	if listen == "" {
		fmt.Fprintln(os.Stderr, "hbmon: -relay requires -listen")
		os.Exit(2)
	}
	if len(upstreams)+len(upstreamFiles) == 0 {
		fmt.Fprintln(os.Stderr, "hbmon: -relay requires at least one -upstream or -upstream-file")
		os.Exit(2)
	}
	// The rollup callback runs on the relay's merge loop, after relay is
	// assigned, so the shed-delta read below needs no synchronization.
	var relay *hbnet.Relay
	var lastShed uint64
	relay = hbnet.NewRelay(
		hbnet.WithRollupInterval(rollupInterval),
		hbnet.WithRelayOnError(func(app string, err error) {
			fmt.Fprintf(os.Stderr, "hbmon: upstream %s: %v\n", app, err)
		}),
		hbnet.WithRelayOnRollup(func(rs []observer.Rollup) {
			for _, r := range rs {
				reportRollup(r, -1)
			}
			// Backpressure visibility: when lagging subscribers forced this
			// relay to shed merged history since the last window, say so —
			// shed loss is deliberate and must never be silent.
			if shed := relay.Shed(); shed > lastShed {
				fmt.Printf("relay: shed %d records to slow subscribers (total %d)\n", shed-lastShed, shed)
				lastShed = shed
			}
		}),
	)
	for _, spec := range upstreams {
		name, rest, ok := strings.Cut(spec, "=")
		addr, feed, ok2 := strings.Cut(rest, "/")
		if !ok || !ok2 || name == "" || addr == "" || feed == "" {
			fmt.Fprintf(os.Stderr, "hbmon: bad -upstream %q, want NAME=ADDR/FEED\n", spec)
			os.Exit(2)
		}
		if _, err := relay.DialUpstream(name, addr, feed); err != nil {
			fmt.Fprintln(os.Stderr, "hbmon:", err)
			os.Exit(1)
		}
		fmt.Printf("upstream %s: feed %q at %s\n", name, feed, addr)
	}
	for _, spec := range upstreamFiles {
		name, path, ok := strings.Cut(spec, "=")
		if !ok || name == "" || path == "" {
			fmt.Fprintf(os.Stderr, "hbmon: bad -upstream-file %q, want NAME=PATH\n", spec)
			os.Exit(2)
		}
		if err := relay.AddFileUpstream(name, path, poll/10); err != nil {
			fmt.Fprintln(os.Stderr, "hbmon:", err)
			os.Exit(1)
		}
		fmt.Printf("upstream %s: file %s\n", name, path)
	}
	srv := hbnet.NewServer(hbnet.WithServerOnError(func(err error) {
		fmt.Fprintln(os.Stderr, "hbmon:", err)
	}))
	if err := relay.PublishOn(srv, mergedFeed, rollupFeed); err != nil {
		fmt.Fprintln(os.Stderr, "hbmon:", err)
		os.Exit(1)
	}
	l, err := net.Listen("tcp", listen)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hbmon:", err)
		os.Exit(1)
	}
	go func() {
		if err := srv.Serve(l); err != nil {
			fmt.Fprintln(os.Stderr, "hbmon: serve:", err)
			os.Exit(1)
		}
	}()
	fmt.Printf("relaying %d upstreams on %s (merged %q, rollups %q every %v)\n",
		len(upstreams)+len(upstreamFiles), l.Addr(), mergedFeed, rollupFeed, rollupInterval)
	defer relay.Close()
	defer srv.Close()
	relay.Run(context.Background())
}

// runRollups prints rollups from a remote rollup feed; count bounds the
// printed report lines (one line per app per window), matching what
// -count means in the other modes. Every line carries the health weight
// a balance.Policy assigns from the window evidence; with printSwaps,
// the backing balance.Updater also reports each routing-table swap it
// publishes — the decisions a balancer fed by this monitor would make.
func runRollups(c *hbnet.Client, count int, printSwaps bool) {
	var opts []balance.UpdaterOption
	if printSwaps {
		opts = append(opts, balance.WithOnSwap(func(s balance.Swap) {
			fmt.Printf("%s  balance: %s %.2f -> %.2f, remapped %.1f%% of keys (weight share %.1f%%)\n",
				time.Now().Format("15:04:05.000"), s.Node, s.Old, s.New, 100*s.Frac(), 100*s.Share) //hbvet:allow wallclock -- wall-clock timestamp on a human-facing report line
		}))
	}
	updater := balance.NewUpdater(balance.New(), balance.DefaultPolicy(), opts...)
	printed := 0
	for count == 0 || printed < count {
		rb, err := c.NextRollups(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbmon:", err)
			os.Exit(1)
		}
		if rb.Missed > 0 {
			fmt.Printf("(%d rollup windows lost to a long disconnect)\n", rb.Missed)
		}
		updater.Absorb(rb.Rollups...)
		for _, r := range rb.Rollups {
			reportRollup(r, updater.Weight(r.App))
			if printed++; count != 0 && printed >= count {
				break
			}
		}
	}
}

// reportRollup prints one per-app downsampled window; weight < 0 omits
// the health-weight column (relay mode, which judges nothing).
func reportRollup(r observer.Rollup, weight float64) {
	rate := "rate  n/a"
	if r.RateOK {
		rate = fmt.Sprintf("rate %7.2f beats/s", r.Rate.PerSec)
	}
	line := fmt.Sprintf("%s  %-12s beats %8d  +%d  %s",
		r.End.Format("15:04:05.000"), r.App, r.Count, r.Records, rate)
	if r.Records > 0 {
		line += fmt.Sprintf("  iv [%s %s %s]", r.MinInterval.Round(time.Microsecond),
			r.MeanInterval.Round(time.Microsecond), r.MaxInterval.Round(time.Microsecond))
	}
	if weight >= 0 {
		line += fmt.Sprintf("  weight %.2f", weight)
	}
	if r.Missed > 0 {
		line += fmt.Sprintf("  (missed %d)", r.Missed)
	}
	fmt.Println(line)
}

// report prints one status line; delta < 0 means "don't show new-beat
// accounting" (snapshot mode).
func report(st observer.Status, delta int64, missed uint64) {
	target := "no target"
	if st.TargetSet {
		target = fmt.Sprintf("target [%.2f, %.2f]", st.TargetMin, st.TargetMax)
	}
	rate := "rate  n/a"
	if st.RateOK {
		rate = fmt.Sprintf("rate %7.2f beats/s", st.Rate)
	}
	line := fmt.Sprintf("%s  beats %8d", time.Now().Format("15:04:05.000"), st.Count) //hbvet:allow wallclock -- wall-clock timestamp on a human-facing report line
	if delta >= 0 {
		line += fmt.Sprintf("  +%d", delta)
	}
	line += fmt.Sprintf("  %s  %s  health %s", rate, target, st.Health)
	if missed > 0 {
		line += fmt.Sprintf("  (missed %d: consumer outran by ring overwrite)", missed)
	}
	fmt.Println(line)
}
