// Command hbencoder runs the adaptive-encoder experiments: internal
// self-optimization (Figures 3 and 4, §5.2) and heartbeat-driven fault
// tolerance (Figure 8, §5.4).
//
// Usage:
//
//	hbencoder [-experiment fig3|fig4|fig8|all] [-frames N]
//	          [-chart-width W] [-chart-height H]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all", "fig3, fig4, fig8, or all")
	frames := flag.Int("frames", 0, "frame budget (0 = paper scale, 600)")
	cw := flag.Int("chart-width", 72, "ASCII chart width")
	ch := flag.Int("chart-height", 16, "ASCII chart height")
	flag.Parse()

	ids := []string{"fig3", "fig4", "fig8"}
	if *exp != "all" {
		ids = []string{*exp}
	}
	opt := experiments.Options{EncoderFrames: *frames}
	for _, id := range ids {
		r, err := experiments.Run(id, opt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hbencoder:", err)
			os.Exit(1)
		}
		fmt.Printf("== %s ==\n", r.Title)
		r.Series.Chart(os.Stdout, *cw, *ch)
		for _, n := range r.Notes {
			fmt.Println("note:", n)
		}
		fmt.Println()
	}
}
