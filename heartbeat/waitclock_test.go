package heartbeat_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/heartbeat"
	"repro/sim"
)

// The waitclock tests live in the external package so they can use
// sim.Clock, the canonical WaitClock implementation.

func TestAfterFallsBackToWallClock(t *testing.T) {
	start := time.Now()
	<-heartbeat.After(nil, time.Millisecond)
	if time.Since(start) < time.Millisecond {
		t.Fatal("wall-clock After returned early")
	}
	<-heartbeat.After(heartbeat.SystemClock(), time.Millisecond)
}

func TestAfterUsesWaitClock(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	ch := heartbeat.After(clk, time.Hour)
	select {
	case <-ch:
		t.Fatal("virtual timer fired without an advance")
	case <-time.After(20 * time.Millisecond):
	}
	clk.Advance(time.Hour)
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("virtual timer never fired after the advance")
	}
}

func TestContextWithTimeoutVirtualDeadline(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	ctx, cancel := heartbeat.ContextWithTimeout(context.Background(), clk, time.Minute)
	defer cancel()
	select {
	case <-ctx.Done():
		t.Fatal("virtual deadline fired without an advance")
	case <-time.After(20 * time.Millisecond):
	}
	if ctx.Err() != nil {
		t.Fatalf("premature Err: %v", ctx.Err())
	}
	clk.Advance(2 * time.Minute)
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("virtual deadline never fired")
	}
	// The expiry must read as a deadline, not a cancellation: consumers
	// (CollectInto, hub pumps) distinguish "interval elapsed" from
	// "cancelled" by exactly this.
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want DeadlineExceeded", ctx.Err())
	}
}

func TestContextWithTimeoutCancelAndParent(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	ctx, cancel := heartbeat.ContextWithTimeout(context.Background(), clk, time.Minute)
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("cancel never propagated")
	}
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want Canceled", ctx.Err())
	}

	parent, pcancel := context.WithCancel(context.Background())
	ctx2, cancel2 := heartbeat.ContextWithTimeout(parent, clk, time.Minute)
	defer cancel2()
	pcancel()
	select {
	case <-ctx2.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("parent cancellation never propagated")
	}
	if !errors.Is(ctx2.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want Canceled", ctx2.Err())
	}
}

func TestContextWithTimeoutWallFallback(t *testing.T) {
	ctx, cancel := heartbeat.ContextWithTimeout(context.Background(), nil, 5*time.Millisecond)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("wall-clock timeout never fired")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want DeadlineExceeded", ctx.Err())
	}
}
