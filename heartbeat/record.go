package heartbeat

import "time"

// Record is a single registered heartbeat. Each heartbeat is automatically
// stamped with the current time and the identity of its producer; the tag is
// free-form application data (frame type, sequence number, phase id, ...).
type Record struct {
	// Seq is the 1-based position of this record in its history
	// (global or per-thread). Sequence numbers are dense: record n+1 was
	// produced after record n. Global sequence numbers are assigned when
	// the aggregator merges per-thread shards (in timestamp order, ties
	// broken by shard registration order), so under concurrent producers
	// they order records as merged, not as raced.
	Seq uint64
	// Time is the timestamp assigned when the heartbeat was registered.
	Time time.Time
	// Tag is the caller-supplied tag (0 for plain Beat calls).
	Tag int64
	// Producer identifies the registered thread handle that emitted the
	// record, or 0 for records emitted on the global handle directly.
	Producer int32
}

// Rate is a heart-rate measurement derived from a window of records.
type Rate struct {
	// PerSec is the average heart rate in beats per second: (n-1) beats
	// over the span between the first and last record of the window.
	PerSec float64
	// Beats is the number of records the measurement used (>= 2).
	Beats int
	// Span is the elapsed time between the first and last record used.
	Span time.Duration
	// FirstSeq and LastSeq delimit the window.
	FirstSeq, LastSeq uint64
}

// rateOf computes the heart rate over recs (oldest to newest).
// It returns ok == false when fewer than two records are available or the
// span is not positive.
func rateOf(recs []Record) (Rate, bool) {
	if len(recs) < 2 {
		return Rate{}, false
	}
	first, last := recs[0], recs[len(recs)-1]
	span := last.Time.Sub(first.Time)
	if span <= 0 {
		return Rate{}, false
	}
	return Rate{
		PerSec:   float64(len(recs)-1) / span.Seconds(),
		Beats:    len(recs),
		Span:     span,
		FirstSeq: first.Seq,
		LastSeq:  last.Seq,
	}, true
}

// Intervals returns the inter-beat gaps of recs (oldest to newest), in
// seconds. Non-positive gaps (possible between concurrent producers) are
// clamped to zero.
func Intervals(recs []Record) []float64 {
	if len(recs) < 2 {
		return nil
	}
	out := make([]float64, 0, len(recs)-1)
	for i := 1; i < len(recs); i++ {
		d := recs[i].Time.Sub(recs[i-1].Time).Seconds()
		if d < 0 {
			d = 0
		}
		out = append(out, d)
	}
	return out
}
