package heartbeat_test

import (
	"testing"
	"testing/quick"
	"time"

	"repro/heartbeat"
)

func TestFilterTag(t *testing.T) {
	hb, clk := newTestHB(t, 10)
	// Simulate a video encoder tagging frame types: I=1, P=2, B=3.
	pattern := []int64{1, 2, 3, 3, 2, 3, 3, 1, 2, 3}
	for _, tag := range pattern {
		clk.Advance(100 * time.Millisecond)
		hb.BeatTag(tag)
	}
	recs := hb.History(10)
	iframes := heartbeat.FilterTag(recs, 1)
	if len(iframes) != 2 || iframes[0].Seq != 1 || iframes[1].Seq != 8 {
		t.Fatalf("FilterTag(1) = %+v", iframes)
	}
	if got := heartbeat.FilterTag(recs, 99); got != nil {
		t.Fatalf("FilterTag(99) = %v", got)
	}
}

func TestFilterProducer(t *testing.T) {
	hb, clk := newTestHB(t, 10)
	t1 := hb.Thread("a")
	t2 := hb.Thread("b")
	clk.Advance(time.Millisecond)
	t1.GlobalBeat()
	t2.GlobalBeat()
	hb.Beat()
	t1.GlobalBeat()
	recs := hb.History(10)
	if got := heartbeat.FilterProducer(recs, t1.ID()); len(got) != 2 {
		t.Fatalf("producer %d records = %+v", t1.ID(), got)
	}
	if got := heartbeat.FilterProducer(recs, 0); len(got) != 1 {
		t.Fatalf("direct records = %+v", got)
	}
}

func TestRateByTag(t *testing.T) {
	hb, clk := newTestHB(t, 20, heartbeat.WithCapacity(64))
	// Tag 7 beats every 1s; tag 9 beats every 250ms, interleaved.
	for i := 0; i < 12; i++ {
		clk.Advance(250 * time.Millisecond)
		hb.BeatTag(9)
		if i%4 == 3 {
			hb.BeatTag(7)
		}
	}
	r9, ok := hb.RateByTag(64, 9)
	if !ok || r9.PerSec < 3.99 || r9.PerSec > 4.01 {
		t.Fatalf("rate(tag 9) = %+v", r9)
	}
	r7, ok := hb.RateByTag(64, 7)
	if !ok || r7.PerSec < 0.99 || r7.PerSec > 1.01 {
		t.Fatalf("rate(tag 7) = %+v", r7)
	}
	if _, ok := hb.RateByTag(64, 42); ok {
		t.Fatal("rate of absent tag reported ok")
	}
}

func TestTagsDiscovery(t *testing.T) {
	hb, clk := newTestHB(t, 10)
	for _, tag := range []int64{5, 5, 2, 5, 9, 2} {
		clk.Advance(time.Millisecond)
		hb.BeatTag(tag)
	}
	tags := hb.Tags(10)
	want := []int64{5, 2, 9}
	if len(tags) != len(want) {
		t.Fatalf("Tags = %v", tags)
	}
	for i := range want {
		if tags[i] != want[i] {
			t.Fatalf("Tags = %v, want %v", tags, want)
		}
	}
}

func TestIntervalStats(t *testing.T) {
	hb, clk := newTestHB(t, 10)
	gaps := []time.Duration{100, 200, 300, 200} // ms
	hb.Beat()
	for _, g := range gaps {
		clk.Advance(g * time.Millisecond)
		hb.Beat()
	}
	st, ok := hb.IntervalStats(0)
	if !ok {
		t.Fatal("not ok")
	}
	if st.Beats != 5 || st.Min != 100*time.Millisecond || st.Max != 300*time.Millisecond {
		t.Fatalf("stats = %+v", st)
	}
	if st.Mean != 200*time.Millisecond {
		t.Fatalf("mean = %v", st.Mean)
	}
	if st.CV <= 0 || st.CV > 1 {
		t.Fatalf("CV = %v", st.CV)
	}
	if _, ok := heartbeat.IntervalStatsOf(nil); ok {
		t.Fatal("empty stats ok")
	}
}

// Property: FilterTag partitions the history — every record appears in
// exactly the filter of its own tag, and concatenating filters over the
// distinct tags preserves the total count.
func TestFilterTagPartitionProperty(t *testing.T) {
	f := func(tagChoices []uint8) bool {
		if len(tagChoices) == 0 {
			return true
		}
		hb, err := heartbeat.New(10, heartbeat.WithCapacity(512))
		if err != nil {
			return false
		}
		for _, c := range tagChoices {
			hb.BeatTag(int64(c % 4))
		}
		recs := hb.History(512)
		total := 0
		for tag := int64(0); tag < 4; tag++ {
			sub := heartbeat.FilterTag(recs, tag)
			total += len(sub)
			for _, r := range sub {
				if r.Tag != tag {
					return false
				}
			}
		}
		return total == len(recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
