// External scheduler (§5.3) across a process boundary: the application
// publishes heartbeats into a ring file; a scheduler that knows nothing
// about the application reads the file, compares the heart rate to the
// advertised target window, and adjusts the core allocation. This is
// Figure 1(b) of the paper.
//
// For a true two-process demonstration, run the application half with an
// -hbfile flag (see cmd/hbparsec) and watch it with cmd/hbmon; here both
// roles run in one process for a self-contained example, but they share
// nothing except the file.
//
//	go run ./examples/external-scheduler
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/control"
	"repro/hbfile"
	"repro/heartbeat"
	"repro/observer"
	"repro/scheduler"
	"repro/sim"
)

func main() {
	path := filepath.Join(os.TempDir(), "external-scheduler-demo.hb")
	defer os.Remove(path)

	// ---- Application side: beats into the file, knows nothing about
	// schedulers.
	writer, err := hbfile.Create(path, 10, 4096)
	if err != nil {
		log.Fatal(err)
	}
	clk := sim.NewClock(sim.Epoch)
	machine := sim.NewMachine(clk, 8, 1e6)
	machine.SetCores(1)
	hb, err := heartbeat.New(10, heartbeat.WithClock(clk), heartbeat.WithSink(writer))
	if err != nil {
		log.Fatal(err)
	}
	defer hb.Close()
	if err := hb.SetTarget(8, 10); err != nil { // goal: 8-10 beats/s
		log.Fatal(err)
	}

	// ---- Scheduler side: reads ONLY the file, and incrementally — each
	// decision consumes just the records the application published since
	// the previous one, through the file's cursor (observer.FileStream).
	reader, err := hbfile.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()
	sched, err := scheduler.New(
		nil,
		machine,
		scheduler.StepperPolicy{Stepper: &control.Stepper{TargetMin: 8, TargetMax: 10}},
		scheduler.WithStream(observer.FileStream(reader, 0)),
		scheduler.WithWindow(10),
	)
	if err != nil {
		log.Fatal(err)
	}

	// The application works: heavy at first, then the load halves.
	work := func(beat int) sim.Work {
		ops := 0.5e6
		if beat > 250 {
			ops = 0.22e6
		}
		return sim.Work{Ops: ops, ParallelFrac: 0.95}
	}
	fmt.Println("beat  rate(beats/s)  cores  decision source: heartbeat file only")
	peak := 1
	for beat := 1; beat <= 500; beat++ {
		machine.Execute(work(beat))
		hb.Beat()
		if beat%10 == 0 {
			s, err := sched.Step()
			if err != nil {
				log.Fatal(err)
			}
			if s.Cores > peak {
				peak = s.Cores
			}
			if beat%50 == 0 {
				fmt.Printf("%4d  %13.2f  %5d\n", beat, s.Rate, s.Cores)
			}
		}
	}
	if err := hb.SinkErr(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nload halved at beat 250; final allocation %d cores (peak was %d)\n",
		machine.Cores(), peak)
	fmt.Println("the scheduler used the minimum cores that kept the rate in [8, 10]")
}
