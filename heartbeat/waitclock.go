package heartbeat

import (
	"context"
	"sync"
	"time"
)

// WaitClock is the unified time interface of the whole stack: a Clock that
// can also schedule waits on its own notion of time. The wall clock
// trivially satisfies it through time.After; a simulated clock (sim.Clock)
// satisfies it by registering virtual timers that fire when the clock is
// advanced. Every long-running loop in the system — observer tickers,
// hbnet backoff and retry pacing, scheduler decision cadences — waits
// through After(clk, d) rather than time.After, which is what lets the
// deterministic simulation harness (package simnet) run the entire stack
// under virtual time: a simulated second costs the number of events in it,
// not a second of anyone's life.
type WaitClock interface {
	Clock
	// After returns a channel that delivers the clock's reading once d has
	// elapsed on this clock. Like time.After, the timer cannot be stopped;
	// use it for waits that are consumed or abandoned wholesale.
	After(d time.Duration) <-chan time.Time
}

// Now reads clk, falling back to the wall clock for nil — the one
// nil-tolerant clock reader every package shares.
func Now(clk Clock) time.Time {
	if clk != nil {
		return clk.Now()
	}
	return time.Now() //hbvet:allow wallclock -- nil-clock fallback: this function is the wall-read seam itself
}

// After waits d on clk's schedule: clocks implementing WaitClock wait in
// their own (possibly virtual) time, everything else — including a nil clk
// — falls back to time.After. This is the one wait primitive the package
// loops share.
func After(clk Clock, d time.Duration) <-chan time.Time {
	if wc, ok := clk.(WaitClock); ok {
		return wc.After(d)
	}
	return time.After(d) //hbvet:allow wallclock -- non-WaitClock fallback: this function is the wall-wait seam itself
}

// SleepCtx blocks for d on clk's schedule or until ctx is cancelled; false
// means cancelled.
func SleepCtx(ctx context.Context, clk Clock, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	select {
	case <-ctx.Done():
		return false
	case <-After(clk, d):
		return true
	}
}

// Ticker delivers one tick per interval on any Clock: wall clocks (nil,
// SystemClock, CoarseClock — anything without scheduling) reuse a single
// runtime ticker, while WaitClocks re-arm a virtual timer per tick (a
// virtual timer cannot be cancelled, so a long-lived ticker re-arms only
// as it is consumed). Receive from C(), then call Next() to re-arm before
// the next receive:
//
//	tick := heartbeat.NewTicker(clk, interval)
//	defer tick.Stop()
//	for {
//		select {
//		case <-tick.C():
//			tick.Next()
//			...
//		}
//	}
type Ticker struct {
	clk Clock
	d   time.Duration
	t   *time.Ticker // wall path; nil on the virtual path
	ch  <-chan time.Time
}

// NewTicker creates a ticker with period d on clk.
func NewTicker(clk Clock, d time.Duration) *Ticker {
	tk := &Ticker{clk: clk, d: d}
	if _, virtual := clk.(WaitClock); virtual {
		tk.ch = After(clk, d)
	} else {
		tk.t = time.NewTicker(d) //hbvet:allow wallclock,clockthread -- wall-path branch of the clock-dispatching ticker seam
		tk.ch = tk.t.C
	}
	return tk
}

// C returns the channel to receive the next tick from. On the virtual
// path the channel changes after each Next, so re-read C() per wait.
func (t *Ticker) C() <-chan time.Time { return t.ch }

// Next re-arms the ticker after a received tick (no-op on the wall path,
// where the runtime ticker keeps its own cadence).
func (t *Ticker) Next() {
	if t.t == nil {
		t.ch = After(t.clk, t.d)
	}
}

// Stop releases the wall ticker. An outstanding virtual timer cannot be
// removed; it fires into an abandoned channel and is collected.
func (t *Ticker) Stop() {
	if t.t != nil {
		t.t.Stop()
	}
}

// ContextWithTimeout derives a context that expires once d has elapsed on
// clk. For wall clocks (anything not implementing WaitClock, including nil)
// it is exactly context.WithTimeout; for virtual clocks the deadline is a
// virtual-time timer, so a loop bounding its waits with it re-polls on the
// simulation's schedule instead of the host's. The expired context reports
// context.DeadlineExceeded, like a real deadline context, because callers
// distinguish "the interval elapsed" from "cancelled" by exactly that.
//
// Cost note: the virtual path spawns one watcher goroutine per call, and
// the timer it registers cannot be removed by cancel — it stays queued on
// the clock until virtual time sweeps past it. That is fine for the
// interval-bounded loops this serves (one abandoned interval-length timer
// per delivered batch, reclaimed within the interval); don't put it on a
// per-record hot path.
func ContextWithTimeout(parent context.Context, clk Clock, d time.Duration) (context.Context, context.CancelFunc) {
	wc, ok := clk.(WaitClock)
	if !ok {
		return context.WithTimeout(parent, d) //hbvet:allow wallclock -- wall-clock branch of the deadline seam itself
	}
	ctx := &waitClockCtx{parent: parent, done: make(chan struct{})}
	stop := make(chan struct{})
	var stopOnce sync.Once
	cancel := func() { stopOnce.Do(func() { close(stop) }) }
	go func() {
		select {
		case <-parent.Done():
			ctx.expire(parent.Err())
		case <-wc.After(d):
			ctx.expire(context.DeadlineExceeded)
		case <-stop:
			ctx.expire(context.Canceled)
		}
	}()
	return ctx, cancel
}

// waitClockCtx is a context whose deadline lives on a WaitClock. It carries
// no wall-clock Deadline() — the virtual deadline is not comparable to the
// caller's time.Now, and reporting none makes select-based waiters (the
// only consumers) do the right thing.
type waitClockCtx struct {
	parent context.Context
	done   chan struct{}

	mu  sync.Mutex
	err error
}

func (c *waitClockCtx) expire(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.done)
	}
	c.mu.Unlock()
}

func (c *waitClockCtx) Deadline() (time.Time, bool)       { return time.Time{}, false }
func (c *waitClockCtx) Done() <-chan struct{}             { return c.done }
func (c *waitClockCtx) Value(key interface{}) interface{} { return c.parent.Value(key) }

func (c *waitClockCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}
