// Package stats provides small windowed statistics helpers used by the
// heartbeat runtime and the external observers: summary statistics over
// slices and an exponentially weighted moving average.
package stats

import "math"

// Summary holds aggregate statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Min    float64
	Max    float64
	StdDev float64 // population standard deviation
}

// Summarize computes summary statistics over xs.
// An empty sample yields a zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	s.StdDev = math.Sqrt(ss / float64(len(xs)))
	return s
}

// CV returns the coefficient of variation (stddev/mean), or 0 when the mean
// is zero. It measures how "erratic" a sample of inter-beat intervals is.
func (s Summary) CV() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.StdDev / s.Mean
}

// EWMA is an exponentially weighted moving average.
// The zero value with Alpha set is ready to use.
type EWMA struct {
	Alpha float64 // smoothing factor in (0, 1]; larger tracks faster
	value float64
	init  bool
}

// Update folds x into the average and returns the new value.
func (e *EWMA) Update(x float64) float64 {
	if !e.init {
		e.value = x
		e.init = true
		return x
	}
	e.value = e.Alpha*x + (1-e.Alpha)*e.value
	return e.value
}

// Value returns the current average (0 before the first Update).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether Update has been called at least once.
func (e *EWMA) Initialized() bool { return e.init }

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ClampInt limits x to [lo, hi].
func ClampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
