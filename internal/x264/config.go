// Package x264 implements a block-based motion-estimation video encoder
// standing in for the paper's x264: it performs real motion search
// (exhaustive, hexagon, or diamond), real sub-pixel refinement, real 8x8
// sub-partitioning, and multi-reference-frame search over procedural video,
// counts the actual operations it performs, and reports frame quality as
// PSNR under a fixed-bitrate quantization model. The encoder exposes the
// same knobs the paper's adaptive encoder manipulates ("exhaustive search
// techniques for motion estimation, the analysis of all macroblock
// sub-partitionings, the most demanding sub-pixel motion estimation, and up
// to five reference frames") as an ordered quality ladder.
package x264

import "fmt"

// SearchAlgo selects the integer-pel motion search strategy.
type SearchAlgo int

const (
	// Exhaustive scans every offset within the search range.
	Exhaustive SearchAlgo = iota
	// Hex iterates a six-point hexagon pattern (x264's "hex").
	Hex
	// Diamond iterates a four-point small diamond (x264's "dia"),
	// the computationally light algorithm the paper's adaptive encoder
	// finally settles on.
	Diamond
)

// String names the algorithm as x264 does.
func (a SearchAlgo) String() string {
	switch a {
	case Exhaustive:
		return "esa"
	case Hex:
		return "hex"
	case Diamond:
		return "dia"
	default:
		return fmt.Sprintf("search(%d)", int(a))
	}
}

// MaxRefFrames is the deepest reference list supported (the paper's
// configuration uses up to five).
const MaxRefFrames = 5

// Config is one encoder operating point.
type Config struct {
	// Search is the integer-pel motion search algorithm.
	Search SearchAlgo
	// SearchRange is the ± integer-pel search radius (Exhaustive only).
	SearchRange int
	// SubpelLevels is the number of sub-pixel refinement passes (0-3):
	// each pass evaluates eight interpolated candidates at half the
	// previous step.
	SubpelLevels int
	// Subpartitions enables 8x8 sub-block partitioning analysis.
	Subpartitions bool
	// RefFrames is how many previous frames to search (1..MaxRefFrames).
	RefFrames int
}

// String summarizes the operating point.
func (c Config) String() string {
	parts := "off"
	if c.Subpartitions {
		parts = "on"
	}
	return fmt.Sprintf("me=%s range=%d subpel=%d parts=%s refs=%d",
		c.Search, c.SearchRange, c.SubpelLevels, parts, c.RefFrames)
}

// validate clamps a config to supported values.
func (c Config) validate() Config {
	if c.SearchRange < 1 {
		c.SearchRange = 1
	}
	if c.SearchRange > 16 {
		c.SearchRange = 16
	}
	if c.SubpelLevels < 0 {
		c.SubpelLevels = 0
	}
	if c.SubpelLevels > 3 {
		c.SubpelLevels = 3
	}
	if c.RefFrames < 1 {
		c.RefFrames = 1
	}
	if c.RefFrames > MaxRefFrames {
		c.RefFrames = MaxRefFrames
	}
	return c
}

// Ladder returns the ordered list of operating points walked by the
// adaptive encoder, from the paper's launch configuration (level 0:
// exhaustive search, full sub-pixel estimation, all sub-partitionings, five
// reference frames) to the lightest configuration (diamond search, no
// sub-pixel refinement, no sub-partitioning, one reference frame). Each
// step removes work in roughly the order the paper reports its encoder
// shedding it.
func Ladder() []Config {
	return []Config{
		{Search: Exhaustive, SearchRange: 5, SubpelLevels: 3, Subpartitions: true, RefFrames: 3},
		{Search: Exhaustive, SearchRange: 4, SubpelLevels: 3, Subpartitions: true, RefFrames: 3},
		{Search: Exhaustive, SearchRange: 4, SubpelLevels: 2, Subpartitions: true, RefFrames: 3},
		{Search: Exhaustive, SearchRange: 4, SubpelLevels: 2, Subpartitions: true, RefFrames: 2},
		{Search: Exhaustive, SearchRange: 3, SubpelLevels: 2, Subpartitions: true, RefFrames: 2},
		{Search: Exhaustive, SearchRange: 3, SubpelLevels: 1, Subpartitions: true, RefFrames: 2},
		{Search: Exhaustive, SearchRange: 2, SubpelLevels: 1, Subpartitions: true, RefFrames: 2},
		{Search: Hex, SubpelLevels: 2, Subpartitions: true, RefFrames: 2},
		{Search: Hex, SubpelLevels: 1, Subpartitions: true, RefFrames: 2},
		{Search: Diamond, SubpelLevels: 1, Subpartitions: false, RefFrames: 1},
	}
}
