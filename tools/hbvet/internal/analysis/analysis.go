// Package analysis is the minimal go/analysis-shaped framework hbvet's
// analyzers run on. It exists because the container this repo builds in
// has no module cache or network — golang.org/x/tools is unavailable —
// so hbvet carries the few pieces of the framework it actually needs:
// an Analyzer/Pass pair over type-checked syntax, cross-package string
// facts, and the //hbvet:allow escape hatch shared by every analyzer.
//
// The escape hatch is a comment naming the analyzers it silences plus a
// mandatory justification:
//
//	conn.SetDeadline(time.Now().Add(d)) //hbvet:allow wallclock -- kernel deadline, not a loop wait
//
// A trailing allow covers its own line; an allow on a line of its own
// covers the next line. An allow without a justification (no “-- reason”)
// does not silence anything and is itself reported, so the annotation can
// never decay into a bare mute button.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	// SeamFiles are module-relative path patterns (path.Match syntax; a
	// trailing “/” means the whole directory) where this analyzer does not
	// apply — the files whose entire purpose is to touch what the analyzer
	// forbids, like the wall-clock seam itself.
	SeamFiles []string
	Run       func(*Pass) error
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// RelPath renders a position as the module-relative file path the seam
	// patterns and findings use.
	RelPath func(token.Pos) string
	// Facts is the cross-package fact store shared by every pass of a run;
	// packages are analyzed in dependency order, so facts written by a
	// dependency are visible here.
	Facts *Facts

	allows allowIndex
	diags  []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Allowed reports whether a justified //hbvet:allow comment naming this
// pass's analyzer covers pos. Analyzers that traverse (hotpath) consult it
// mid-run to prune an allowed call edge; plain site checks can just report
// and let the driver filter.
func (p *Pass) Allowed(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	return p.allows.covers(position.Filename, position.Line, p.Analyzer.Name)
}

// Diagnostic is one raw analyzer report, before seam and allow filtering.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Finding is one filtered, reportable result.
type Finding struct {
	Analyzer string
	Pos      token.Position
	RelFile  string
	Message  string
}

// Package is the loaded, type-checked input RunPackage consumes. The
// loader (tools/hbvet/internal/load) and the analysistest harness both
// produce it.
type Package struct {
	Fset    *token.FileSet
	Files   []*ast.File
	Pkg     *types.Package
	Info    *types.Info
	RelPath func(token.Pos) string
}

// RunPackage runs the analyzers over one package, applies seam and allow
// filtering, and returns position-sorted findings. Invalid allow comments
// (no justification) are returned as findings of the pseudo-analyzer
// "allow".
func RunPackage(pkg *Package, analyzers []*Analyzer, facts *Facts) ([]Finding, error) {
	allows, invalid := collectAllows(pkg.Fset, pkg.Files)
	var findings []Finding
	for _, bad := range invalid {
		pos := pkg.Fset.Position(bad.pos)
		findings = append(findings, Finding{
			Analyzer: "allow",
			Pos:      pos,
			RelFile:  pkg.RelPath(bad.pos),
			Message:  bad.msg,
		})
	}
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			RelPath:   pkg.RelPath,
			Facts:     facts,
			allows:    allows,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Pkg.Path(), err)
		}
		for _, d := range pass.diags {
			rel := pkg.RelPath(d.Pos)
			if seamFile(a.SeamFiles, rel) {
				continue
			}
			position := pkg.Fset.Position(d.Pos)
			if allows.covers(position.Filename, position.Line, a.Name) {
				continue
			}
			findings = append(findings, Finding{Analyzer: a.Name, Pos: position, RelFile: rel, Message: d.Message})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// seamFile reports whether rel matches any seam pattern.
func seamFile(patterns []string, rel string) bool {
	for _, pat := range patterns {
		if strings.HasSuffix(pat, "/") {
			if strings.HasPrefix(rel, pat) {
				return true
			}
			continue
		}
		if ok, _ := path.Match(pat, rel); ok {
			return true
		}
	}
	return false
}

// Facts is the cross-package fact store: per-analyzer string key/value
// pairs written when a package is analyzed and read by its dependents.
// hbvet runs packages in dependency order, so the store needs no
// serialization format — it lives for one process.
type Facts struct {
	m map[string]map[string]string
}

// NewFacts returns an empty store.
func NewFacts() *Facts { return &Facts{m: make(map[string]map[string]string)} }

// Set records a fact under the analyzer's namespace.
func (f *Facts) Set(analyzer, key, value string) {
	if f.m[analyzer] == nil {
		f.m[analyzer] = make(map[string]string)
	}
	f.m[analyzer][key] = value
}

// Get reads a fact from the analyzer's namespace.
func (f *Facts) Get(analyzer, key string) (string, bool) {
	v, ok := f.m[analyzer][key]
	return v, ok
}

// allowIndex maps file -> line -> analyzer names allowed there.
type allowIndex map[string]map[int]map[string]bool

func (ai allowIndex) covers(file string, line int, analyzer string) bool {
	return ai[file][line][analyzer]
}

func (ai allowIndex) add(file string, line int, analyzer string) {
	if ai[file] == nil {
		ai[file] = make(map[int]map[string]bool)
	}
	if ai[file][line] == nil {
		ai[file][line] = make(map[string]bool)
	}
	ai[file][line][analyzer] = true
}

type invalidAllow struct {
	pos token.Pos
	msg string
}

// allowRe matches one allow comment: analyzer names, then a mandatory
// “-- justification”. The justification group is separate so its absence
// can be reported precisely.
var allowRe = regexp.MustCompile(`^//hbvet:allow\s+([A-Za-z0-9_,]+)\s*(?:--\s*(\S.*))?$`)

// collectAllows indexes every //hbvet:allow comment in the files. A
// trailing comment covers its own line; a standalone comment line covers
// the line after it (stacked allows chain: each standalone allow also
// covers itself, so a pair above one statement works). Allows without a
// justification cover nothing and are returned as invalid.
func collectAllows(fset *token.FileSet, files []*ast.File) (allowIndex, []invalidAllow) {
	idx := make(allowIndex)
	var invalid []invalidAllow
	for _, f := range files {
		// endLine[n] is true when a non-comment token ends on line n —
		// used to tell a trailing allow from a standalone one.
		endLine := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if _, isComment := n.(*ast.Comment); isComment {
				return false
			}
			if _, isGroup := n.(*ast.CommentGroup); isGroup {
				return false
			}
			endLine[fset.Position(n.End()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//hbvet:allow") {
					continue
				}
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					invalid = append(invalid, invalidAllow{c.Slash,
						"malformed //hbvet:allow comment (want //hbvet:allow <analyzer>[,<analyzer>] -- <justification>)"})
					continue
				}
				if m[2] == "" {
					invalid = append(invalid, invalidAllow{c.Slash,
						fmt.Sprintf("//hbvet:allow %s is missing its justification (append “-- <reason>”); it silences nothing", m[1])})
					continue
				}
				pos := fset.Position(c.Slash)
				covered := pos.Line
				if !endLine[pos.Line] {
					// Standalone comment: it shields the line after its whole
					// comment group, so stacked allows (one per analyzer) all
					// land on the same statement.
					covered = fset.Position(cg.End()).Line + 1
				}
				for _, name := range strings.Split(m[1], ",") {
					idx.add(pos.Filename, pos.Line, name)
					idx.add(pos.Filename, covered, name)
				}
			}
		}
	}
	return idx, invalid
}
