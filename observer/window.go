package observer

import (
	"time"

	"repro/heartbeat"
	"repro/internal/stats"
)

// Window accumulates stream batches into the bounded record window that
// rate and health judgments are made over. It is the stream-side
// replacement for re-fetching a Snapshot every tick: Absorb folds in only
// the new records of each batch, and the derived statistics (windowed
// rate, interval variability) are cached between batches, so an idle tick
// does no per-record work at all.
//
// Window is not safe for concurrent use; each consumer owns one.
type Window struct {
	cap    int
	window int
	recs   []heartbeat.Record

	count                uint64
	targetMin, targetMax float64
	targetSet            bool
	missed               uint64

	dirty       bool
	statsWindow int
	rate        heartbeat.Rate
	rateOK      bool
	cv          float64
}

// NewWindow returns a Window retaining the last capacity records.
// capacity <= 0 tracks the observed application's own default window
// (64 records until the first batch reports one).
func NewWindow(capacity int) *Window {
	return &Window{cap: capacity, statsWindow: -1}
}

func (w *Window) limit() int {
	if w.cap > 0 {
		return w.cap
	}
	if w.window > 0 {
		return w.window
	}
	return 64
}

// Absorb folds one batch into the window.
func (w *Window) Absorb(b Batch) {
	if b.Window > 0 {
		w.window = b.Window
	}
	if b.Count > w.count {
		w.count = b.Count
	}
	w.targetMin, w.targetMax, w.targetSet = b.TargetMin, b.TargetMax, b.TargetSet
	w.missed += b.Missed
	if len(b.Records) == 0 {
		return
	}
	w.recs = append(w.recs, b.Records...)
	if lim := w.limit(); len(w.recs) > lim {
		keep := w.recs[len(w.recs)-lim:]
		w.recs = append(w.recs[:0], keep...)
	}
	w.dirty = true
}

// Records returns the retained records, oldest to newest. The slice is the
// window's own storage: read it, don't keep it across Absorbs.
func (w *Window) Records() []heartbeat.Record { return w.recs }

// Count returns the observed application's total heartbeat count.
func (w *Window) Count() uint64 { return w.count }

// Missed returns how many records the stream reported lost to overwrite.
func (w *Window) Missed() uint64 { return w.missed }

// Target returns the advertised target range; ok is false when the
// application never set one.
func (w *Window) Target() (min, max float64, ok bool) {
	return w.targetMin, w.targetMax, w.targetSet
}

// LastBeat returns the timestamp of the newest retained record (zero when
// the window is empty).
func (w *Window) LastBeat() time.Time {
	if len(w.recs) == 0 {
		return time.Time{}
	}
	return w.recs[len(w.recs)-1].Time
}

// RateOver computes the heart rate over the last window records;
// window <= 0 uses the application's default window.
func (w *Window) RateOver(window int) (heartbeat.Rate, bool) {
	if window <= 0 {
		window = w.window
	}
	recs := w.recs
	if window > 0 && len(recs) > window {
		recs = recs[len(recs)-window:]
	}
	return heartbeat.RateOf(recs)
}

// Snapshot views the window as the legacy Snapshot type, for code written
// against the pre-stream API. The records slice is shared, not copied.
func (w *Window) Snapshot() Snapshot {
	return Snapshot{
		Count:     w.count,
		Window:    w.window,
		TargetMin: w.targetMin,
		TargetMax: w.targetMax,
		TargetSet: w.targetSet,
		Records:   w.recs,
	}
}

// cachedStats returns the windowed rate and interval CV, recomputing them
// only when records arrived (or the requested rate window changed) since
// the last call. This is what makes an idle classification tick O(1).
func (w *Window) cachedStats(rateWindow int) (heartbeat.Rate, bool, float64) {
	if w.dirty || rateWindow != w.statsWindow {
		w.rate, w.rateOK = w.RateOver(rateWindow)
		w.cv = stats.Summarize(heartbeat.Intervals(w.recs)).CV()
		w.statsWindow = rateWindow
		w.dirty = false
	}
	return w.rate, w.rateOK, w.cv
}
