package simcheck

import (
	"strings"
	"testing"

	"repro/heartbeat"
	"repro/observer"
)

func recs(seqs ...uint64) []heartbeat.Record {
	out := make([]heartbeat.Record, len(seqs))
	for i, s := range seqs {
		out[i] = heartbeat.Record{Seq: s}
	}
	return out
}

func TestDense(t *testing.T) {
	if err := Dense(recs(1, 2, 3), 0); err != nil {
		t.Fatal(err)
	}
	if err := Dense(recs(5, 6), 4); err != nil {
		t.Fatal(err)
	}
	if err := Dense(recs(1, 3), 0); err == nil {
		t.Fatal("gap not detected")
	}
	if err := Dense(recs(1, 1), 0); err == nil {
		t.Fatal("duplicate not detected")
	}
}

func TestConserved(t *testing.T) {
	if err := Conserved("x", 7, 3, 10); err != nil {
		t.Fatal(err)
	}
	if err := Conserved("x", 7, 2, 10); err == nil {
		t.Fatal("leak not detected")
	}
}

func TestTrackerCleanContinuation(t *testing.T) {
	tr := NewTracker("t", 0)
	if err := tr.Absorb(observer.Batch{Records: recs(1, 2, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Absorb(observer.Batch{Records: recs(4, 5)}); err != nil {
		t.Fatal(err)
	}
	if tr.Delivered() != 5 || tr.Missed() != 0 || tr.Cursor() != 5 {
		t.Fatalf("delivered %d missed %d cursor %d", tr.Delivered(), tr.Missed(), tr.Cursor())
	}
	if err := tr.CheckLives(1); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckConserved(5); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerLapAccounting(t *testing.T) {
	tr := NewTracker("t", 0)
	// A lap: seqs 1..10 published, 1..4 overwritten before delivery.
	if err := tr.Absorb(observer.Batch{Records: recs(5, 6, 7, 8, 9, 10), Missed: 4}); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckConserved(10); err != nil {
		t.Fatal(err)
	}
	// Under-reported loss is a violation.
	tr2 := NewTracker("t2", 0)
	if err := tr2.Absorb(observer.Batch{Records: recs(5, 6), Missed: 2}); err == nil {
		t.Fatal("under-reported Missed not detected")
	}
	// Over-reported loss too.
	tr3 := NewTracker("t3", 0)
	if err := tr3.Absorb(observer.Batch{Records: recs(1, 2), Missed: 1}); err == nil {
		t.Fatal("over-reported Missed not detected")
	}
}

func TestTrackerMissedOnlyBatch(t *testing.T) {
	tr := NewTracker("t", 0)
	if err := tr.Absorb(observer.Batch{Records: recs(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Absorb(observer.Batch{Missed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Absorb(observer.Batch{Records: recs(6, 7)}); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckConserved(7); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerRestartRotatesLife(t *testing.T) {
	tr := NewTracker("t", 0)
	if err := tr.Absorb(observer.Batch{Records: recs(1, 2, 3)}); err != nil {
		t.Fatal(err)
	}
	// Producer restarted; the stream resynced to zero and redelivers the
	// new life from seq 1.
	if err := tr.Absorb(observer.Batch{Records: recs(1, 2)}); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckLives(2); err != nil {
		t.Fatal(err)
	}
	// Conservation across lives: 3 + 2 published in total.
	if err := tr.CheckConserved(5); err != nil {
		t.Fatal(err)
	}
	lives := tr.Lives()
	if lives[0].Head != 3 || lives[1].Head != 2 {
		t.Fatalf("life heads %+v", lives)
	}
}

func TestTrackerRestartLappedPastOldCursor(t *testing.T) {
	// The new life lapped beyond the OLD cursor before its first delivery:
	// the batch's first seq is above the old cursor, so it superficially
	// looks like a continuation — but only the restart reading (Missed
	// exact relative to zero) accounts it. Absorb must rotate, not fail.
	tr := NewTracker("t", 0)
	if err := tr.Absorb(observer.Batch{Records: recs(1, 2, 3, 4, 5)}); err != nil { // cursor 5
		t.Fatal(err)
	}
	// New life at head 40, ring retains 31..40: Missed=30 relative to zero.
	burst := recs(31, 32, 33, 34, 35, 36, 37, 38, 39, 40)
	if err := tr.Absorb(observer.Batch{Records: burst, Missed: 30}); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckLives(2); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckConserved(45); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerRestartWithNewLifeLap(t *testing.T) {
	tr := NewTracker("t", 0)
	if err := tr.Absorb(observer.Batch{Records: recs(1, 2, 3, 4, 5)}); err != nil {
		t.Fatal(err)
	}
	// New life already at head 8 with records 1..3 lapped: the resynced
	// stream reports Missed relative to zero.
	if err := tr.Absorb(observer.Batch{Records: recs(4, 5, 6, 7, 8), Missed: 3}); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckLives(2); err != nil {
		t.Fatal(err)
	}
	if err := tr.CheckConserved(13); err != nil {
		t.Fatal(err)
	}
}

func TestTrackerDuplicateDetected(t *testing.T) {
	tr := NewTracker("t", 0)
	if err := tr.Absorb(observer.Batch{Records: recs(1, 2, 3)}); err != nil {
		t.Fatal(err)
	}
	// A re-delivered batch is a regression that does NOT look like a
	// restart resync (its Missed accounting is wrong relative to zero)…
	if err := tr.Absorb(observer.Batch{Records: recs(2, 3)}); err == nil {
		t.Fatal("duplicate delivery not detected")
	}
	// …and even one that does (dense from 1) is caught by the life count.
	tr2 := NewTracker("t2", 0)
	tr2.Absorb(observer.Batch{Records: recs(1, 2, 3)})
	tr2.Absorb(observer.Batch{Records: recs(1, 2, 3)})
	if err := tr2.CheckLives(1); err == nil {
		t.Fatal("duplicate-as-restart not caught by life count")
	}
}

func TestTrackerUnsortedBatch(t *testing.T) {
	tr := NewTracker("t", 0)
	err := tr.Absorb(observer.Batch{Records: recs(1, 3, 2)})
	if err == nil || !strings.Contains(err.Error(), "strictly increasing") {
		t.Fatalf("unsorted batch not detected: %v", err)
	}
	if tr.Err() == nil {
		t.Fatal("violation not latched")
	}
}

func TestRollupAccount(t *testing.T) {
	var a RollupAccount
	a.AbsorbRollups([]observer.Rollup{{Records: 10, Missed: 2}, {Records: 5}}, 0)
	a.AbsorbRollups([]observer.Rollup{{Records: 3}}, 0)
	if err := a.CheckConserved("rollups", 20); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckConserved("rollups", 21); err == nil {
		t.Fatal("imbalance not detected")
	}
	a.AbsorbRollups(nil, 1)
	if err := a.CheckConserved("rollups", 20); err == nil {
		t.Fatal("lapped emissions must make conservation unverifiable")
	}
}

func TestCheckRemap(t *testing.T) {
	// A remove-1-of-8 swap: share 1/8, measured fraction right at
	// expectation passes; double the expectation fails.
	if err := CheckRemap("ok", 0.125, 0.125); err != nil {
		t.Fatalf("expected remap flagged: %v", err)
	}
	if err := CheckRemap("bad", 0.30, 0.125); err == nil {
		t.Fatal("a swap moving 2.4x its share passed the bound")
	}
	// Tiny shares get the additive allowance (bucket granularity).
	if err := CheckRemap("tiny", 0.02, 0.0); err != nil {
		t.Fatalf("sub-granularity movement flagged: %v", err)
	}
	// A full-table swap (first admission, last drain) is legal by
	// construction: share 1 bounds any fraction.
	if err := CheckRemap("full", 1.0, 1.0); err != nil {
		t.Fatalf("full-share swap flagged: %v", err)
	}
}

func TestCeiling(t *testing.T) {
	if err := Ceiling("p99 (ms)", 11, 2500); err != nil {
		t.Fatalf("measurement under its ceiling flagged: %v", err)
	}
	if err := Ceiling("p99 (ms)", 2500, 2500); err != nil {
		t.Fatalf("measurement exactly at its ceiling flagged: %v", err)
	}
	err := Ceiling("bytes/producer", 9000, 7000)
	if err == nil {
		t.Fatal("budget blowout not detected")
	}
	if !strings.Contains(err.Error(), "bytes/producer") {
		t.Fatalf("violation does not name the budget: %v", err)
	}
}
