package heartbeat_test

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/heartbeat"
	"repro/sim"
)

// Property: for any positive gap sequence, the reported rate over the full
// window equals (n-1)/sum(gaps) — the definition in §3 of the paper —
// and Intervals reproduces the gaps exactly.
func TestRateMatchesDefinitionProperty(t *testing.T) {
	f := func(gapsRaw []uint16) bool {
		if len(gapsRaw) == 0 || len(gapsRaw) > 200 {
			return true
		}
		clk := sim.NewClock(time.Time{})
		hb, err := heartbeat.New(2, heartbeat.WithCapacity(256), heartbeat.WithClock(clk))
		if err != nil {
			return false
		}
		hb.Beat()
		var total float64
		for _, g := range gapsRaw {
			gap := time.Duration(g)*time.Millisecond + time.Millisecond
			total += gap.Seconds()
			clk.Advance(gap)
			hb.Beat()
		}
		want := float64(len(gapsRaw)) / total
		got, ok := hb.Rate(len(gapsRaw) + 1)
		if !ok {
			return false
		}
		if math.Abs(got-want)/want > 1e-6 {
			return false
		}
		iv := heartbeat.Intervals(hb.History(256))
		if len(iv) != len(gapsRaw) {
			return false
		}
		var ivSum float64
		for _, v := range iv {
			ivSum += v
		}
		return math.Abs(ivSum-total)/total < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: widening the window can only incorporate older (or equal)
// first-records: FirstSeq is non-increasing and Beats non-decreasing in
// the window size.
func TestWindowMonotonicityProperty(t *testing.T) {
	clk := sim.NewClock(time.Time{})
	hb, err := heartbeat.New(2, heartbeat.WithCapacity(128), heartbeat.WithClock(clk))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		clk.Advance(time.Duration(10+i%7) * time.Millisecond)
		hb.Beat()
	}
	f := func(aRaw, bRaw uint8) bool {
		a := int(aRaw)%120 + 2
		b := int(bRaw)%120 + 2
		if a > b {
			a, b = b, a
		}
		ra, okA := hb.RateDetail(a)
		rb, okB := hb.RateDetail(b)
		if !okA || !okB {
			return false
		}
		return rb.FirstSeq <= ra.FirstSeq && rb.Beats >= ra.Beats && ra.LastSeq == rb.LastSeq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
