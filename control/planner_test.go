package control

import (
	"testing"
	"testing/quick"

	"repro/sim"
)

func TestPlannerHoldsInWindow(t *testing.T) {
	p := &AmdahlPlanner{ParallelFrac: 0.95, TargetMin: 8, TargetMax: 10}
	if got := p.DesiredCores(9, true, 5, 8); got != 5 {
		t.Fatalf("in-window desired = %d, want hold at 5", got)
	}
	if got := p.DesiredCores(0, false, 5, 8); got != 5 {
		t.Fatalf("no-measurement desired = %d, want hold", got)
	}
}

// On an exactly-Amdahl plant the planner lands in the window in one jump.
func TestPlannerOneShotConvergence(t *testing.T) {
	const base = 2.0 // 1-core rate
	const p = 0.95
	plant := func(c int) float64 { return base * sim.Speedup(c, p) }
	planner := &AmdahlPlanner{ParallelFrac: p, TargetMin: 8, TargetMax: 10}
	cores := 1
	cores = planner.DesiredCores(plant(cores), true, cores, 8)
	rate := plant(cores)
	if rate < 8 || rate > 10.5 {
		t.Fatalf("after one decision: %d cores, %.2f beats/s", cores, rate)
	}
	// And it holds there.
	if got := planner.DesiredCores(rate, true, cores, 8); got != cores {
		t.Fatalf("second decision moved to %d", got)
	}
}

// The planner picks the MINIMUM core count that reaches the window — the
// paper's minimum-resource goal.
func TestPlannerPicksMinimumCores(t *testing.T) {
	const base, p = 2.0, 0.95
	planner := &AmdahlPlanner{ParallelFrac: p, TargetMin: 8, TargetMax: 10}
	got := planner.DesiredCores(base*sim.Speedup(8, p), true, 8, 8)
	// Find the true minimum.
	want := 0
	for c := 1; c <= 8; c++ {
		if base*sim.Speedup(c, p) >= 8 {
			want = c
			break
		}
	}
	if got != want {
		t.Fatalf("planner chose %d cores, minimum is %d", got, want)
	}
}

func TestPlannerUnreachableTargetSaturates(t *testing.T) {
	planner := &AmdahlPlanner{ParallelFrac: 0.5, TargetMin: 100, TargetMax: 200}
	if got := planner.DesiredCores(1, true, 1, 8); got != 8 {
		t.Fatalf("unreachable target desired = %d, want max 8", got)
	}
}

// Property: the planner's output is always within [1, max], and when the
// plant truly is Amdahl with the assumed fraction and the window is
// reachable, the predicted rate at the chosen allocation meets TargetMin.
func TestPlannerSoundnessProperty(t *testing.T) {
	f := func(baseRaw uint8, pRaw uint8, curRaw uint8) bool {
		base := 0.5 + float64(baseRaw)/16
		p := float64(pRaw%90) / 100
		cur := int(curRaw)%8 + 1
		planner := &AmdahlPlanner{ParallelFrac: p, TargetMin: base * 2, TargetMax: base * 3}
		rate := base * sim.Speedup(cur, p)
		got := planner.DesiredCores(rate, true, cur, 8)
		if got < 1 || got > 8 {
			return false
		}
		reachable := base*sim.Speedup(8, p) >= planner.TargetMin
		if reachable && rate < planner.TargetMin {
			// The chosen allocation must be predicted to reach the goal.
			return base*sim.Speedup(got, p) >= planner.TargetMin-1e-9
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
