package observer

// PhaseDetector segments an application's execution into performance
// phases from its heart rate alone — the §2.3 use case ("heartbeats also
// provide a way for an external observer to monitor which phase a program
// is in for the purposes of profiling or field debugging") and the
// structure visible in the paper's Figure 2, where x264 moves through
// three distinct rate regions.
//
// The detector maintains the running mean rate of the current phase; when
// the observed rate deviates from that mean by more than RelThreshold for
// MinSamples consecutive observations, a new phase begins (retroactively
// at the first deviating sample). It is not safe for concurrent use.
type PhaseDetector struct {
	// RelThreshold is the relative deviation from the phase mean that
	// counts as "different" (default 0.25).
	RelThreshold float64
	// MinSamples is how many consecutive deviating observations confirm
	// a phase change (default 3; debounces single-beat noise).
	MinSamples int

	phases []Phase
	cur    Phase
	curSum float64

	pendStart uint64
	pendSum   float64
	pendN     int
}

// Phase is one detected performance regime.
type Phase struct {
	// Index numbers phases from 0.
	Index int
	// StartBeat is the beat at which the phase began.
	StartBeat uint64
	// MeanRate is the average observed rate across the phase.
	MeanRate float64
	// Beats is how many observations the phase spans.
	Beats int
}

func (d *PhaseDetector) relThreshold() float64 {
	if d.RelThreshold <= 0 {
		return 0.25
	}
	return d.RelThreshold
}

func (d *PhaseDetector) minSamples() int {
	if d.MinSamples <= 0 {
		return 3
	}
	return d.MinSamples
}

// Observe feeds one (beat, rate) observation and reports whether a new
// phase just began.
func (d *PhaseDetector) Observe(beat uint64, rate float64) bool {
	if d.cur.Beats == 0 {
		d.cur = Phase{Index: 0, StartBeat: beat, MeanRate: rate, Beats: 1}
		d.curSum = rate
		return true
	}
	mean := d.curSum / float64(d.cur.Beats)
	dev := rate - mean
	if dev < 0 {
		dev = -dev
	}
	if mean > 0 && dev/mean > d.relThreshold() {
		if d.pendN == 0 {
			d.pendStart = beat
		}
		d.pendN++
		d.pendSum += rate
		if d.pendN >= d.minSamples() {
			// Close the current phase and open the new one with the
			// pending samples folded in.
			d.cur.MeanRate = mean
			d.phases = append(d.phases, d.cur)
			d.cur = Phase{
				Index:     d.cur.Index + 1,
				StartBeat: d.pendStart,
				MeanRate:  d.pendSum / float64(d.pendN),
				Beats:     d.pendN,
			}
			d.curSum = d.pendSum
			d.pendN, d.pendSum = 0, 0
			return true
		}
		return false
	}
	// Back inside the phase: absorb any pending samples as noise.
	d.curSum += d.pendSum + rate
	d.cur.Beats += d.pendN + 1
	d.pendN, d.pendSum = 0, 0
	d.cur.MeanRate = d.curSum / float64(d.cur.Beats)
	return false
}

// Current returns the phase in progress (zero value before any
// observation).
func (d *PhaseDetector) Current() Phase {
	c := d.cur
	if c.Beats > 0 {
		c.MeanRate = d.curSum / float64(c.Beats)
	}
	return c
}

// Phases returns all completed phases plus the one in progress.
func (d *PhaseDetector) Phases() []Phase {
	out := make([]Phase, len(d.phases), len(d.phases)+1)
	copy(out, d.phases)
	if d.cur.Beats > 0 {
		out = append(out, d.Current())
	}
	return out
}
